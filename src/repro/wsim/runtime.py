"""Discrete-time work-stealing runtime simulator.

This is the stand-in for the paper's modified Cilk Plus runtime (Sec. V-B;
see DESIGN.md Substitution 1).  Time advances in unit steps; on every step
each of the ``m`` workers performs exactly one action:

* **execute** one unit of its current node (node completion enables 0, 1
  or 2 children, handled Cilk-style: one child continues in place, the
  other is pushed to the deque bottom);
* **pop** the bottom of its own deque and execute (popping is part of the
  work step, as in real work stealing);
* **switch** jobs when its scheduler tells it to (a DREP preemption flag
  firing, or a completed job's re-draw) — switching costs the step,
  modeling preemption overhead;
* otherwise it is **out of work** and the scheduler spends the step on a
  steal attempt / mugging / job admission (every steal attempt costs
  constant work — one step — like the paper assumes).

The engine is scheduler-agnostic: all policy decisions are delegated to a
:class:`~repro.wsim.schedulers.base.WsScheduler`.  Invariants (checked in
debug mode): muggable deques are never empty; a node is on exactly one
deque or one worker; executed units equal total work at the end.

**Macro-stepping.**  When every worker is mid-node and nothing can change
for ``k`` steps — no arrival is due, no node can complete, no preemption
flag can fire, no worker is paying overhead — the runtime advances all
workers ``k`` units in one bulk update instead of ``k`` trips through the
per-step machinery.  Eligibility is conservative: it requires unit-speed
workers (so ``k`` subtractions of 1.0 equal one subtraction of
``float(k)`` exactly), no observer, a default ``on_step`` hook and debug
invariants off; counters and flow times are bit-for-bit identical to
unit-stepping (``tests/wsim/test_golden.py`` and a Hypothesis
equivalence test enforce this).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import ScheduleResult
from repro.core.rng import RngFactory
from repro.dag.graph import NO_CHILD
from repro.perf.counters import PerfCounters
from repro.wsim.structures import JobRun, Worker, WsDeque
from repro.workloads.traces import Trace

__all__ = ["WsConfig", "WsRuntime", "simulate_ws", "WsimError"]


class WsimError(RuntimeError):
    """Raised when the runtime detects an invariant violation or stall."""


@dataclass(frozen=True)
class WsConfig:
    """Runtime knobs.

    preempt_check:
        When a flagged worker notices its DREP preemption flag —
        ``"steal"`` (only on steal attempts; the paper's implementation),
        ``"node"`` (at node boundaries; the paper's proposed improvement,
        checking "at function calls"), or ``"step"`` (immediately; the
        theoretical algorithm of Sec. IV-A).
    preemption_overhead:
        Extra steps a worker loses after every preemptive switch,
        modeling the state save/restore cost the paper's practicality
        argument is about ("when a preemption occurs the state of a job
        needs to be stored and then later restored; this leads to a
        large overhead", Sec. I).  Zero by default (the paper's own
        simulation convention); ablation X7 sweeps it.
    max_steps:
        Hard cap on simulated steps (default: generous bound from total
        work); exceeding it raises :class:`WsimError`.
    debug_invariants:
        Check structural invariants every step (slow; used by tests).
    """

    preempt_check: str = "steal"
    preemption_overhead: int = 0
    max_steps: int | None = None
    debug_invariants: bool = False

    def __post_init__(self) -> None:
        if self.preempt_check not in ("steal", "node", "step"):
            raise ValueError(
                f"preempt_check must be steal|node|step, got {self.preempt_check!r}"
            )
        if self.preemption_overhead < 0:
            raise ValueError("preemption_overhead must be >= 0")


@dataclass
class WsCounters:
    """Practicality counters the paper's arguments are about."""

    work_steps: int = 0
    steal_attempts: int = 0
    failed_steals: int = 0
    muggings: int = 0
    preemptions: int = 0
    switches: int = 0
    admissions: int = 0
    idle_steps: int = 0
    #: steps lost to preemption state save/restore (config overhead)
    overhead_steps: int = 0
    #: node-level migrations: ready nodes that started executing on a
    #: different worker than the one that made them ready (successful
    #: steals and muggings) — the paper's costly "migration" events
    node_migrations: int = 0
    # -- fault-injection probes (repro.faults) --------------------------
    #: worker crashes applied
    crashes: int = 0
    #: job aborts applied
    aborts: int = 0
    #: work units executed and then thrown away — a crashed worker's
    #: partial node plus everything an aborted job had completed; the
    #: re-execution cost faults impose on the schedule
    lost_work: float = 0.0
    #: worker-steps spent crashed (capacity removed from the machine)
    dead_steps: int = 0
    extra: dict = field(default_factory=dict)


class WsRuntime:
    """One simulation run: a trace, ``m`` workers and a scheduler."""

    def __init__(
        self,
        trace: Trace,
        m: int,
        scheduler: "WsScheduler",
        seed: int = 0,
        config: WsConfig = WsConfig(),
        speeds: "np.ndarray | None" = None,
        faults=None,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        for spec in trace.jobs:
            if spec.dag is None:
                raise ValueError(
                    "wsim needs DAG-attached traces; see workloads.attach_dags"
                )
        self.trace = trace
        self.m = m
        self.scheduler = scheduler
        self.config = config
        # heterogeneous workers (the open problem's full setting: parallel
        # jobs on processors of different speeds): worker p executes
        # speeds[p] work units per step; steal attempts still cost one
        # step for everyone.  None means identical unit-speed workers.
        if speeds is not None:
            speeds = np.ascontiguousarray(speeds, dtype=float)
            if speeds.shape != (m,):
                raise ValueError("speeds must have shape (m,)")
            if (speeds <= 0).any():
                raise ValueError("speeds must be positive")
        self.speeds = speeds
        self.rng = RngFactory(seed).stream(f"wsim/{scheduler.name}")
        # bound-method cache: steal_within draws once per attempt and the
        # attribute chain is measurable at that call rate
        self._rng_integers = self.rng.integers
        self.workers = [Worker(wid=i) for i in range(m)]
        #: all arrived, unfinished jobs — the paper's A(t).  Schedulers
        #: append on arrival; the runtime removes on completion.
        self.active: list[JobRun] = []
        self.counters = WsCounters()
        self.step = 0
        self._arrivals = [
            (int(math.ceil(spec.release)), spec) for spec in trace.jobs
        ]
        self._next_arrival = 0
        self._completed = 0
        self._flow_steps = np.full(len(trace), np.nan)
        total_work = sum(int(spec.dag.work) for spec in trace.jobs)
        self.total_work_units = total_work
        horizon = self._arrivals[-1][0] if self._arrivals else 0
        self.max_steps = config.max_steps or (
            horizon + 50 * total_work + 10_000
        )
        # -- fault injection (repro.faults): crash/abort plans only -------
        # ``faults`` is a FaultPlan; compiled lazily so this module keeps
        # no import-time dependency on repro.faults
        self.faults = faults
        self._fault_heap: list[tuple[int, int, dict]] = []
        self._fault_seq = 0
        self._fault_next: float = math.inf
        self._fault_log: list[dict] = []
        #: global-mode nodes stranded with no live worker to adopt them
        self._orphans: list = []
        self._live_workers = self.workers
        if faults is not None:
            from repro.faults.timeline import step_agenda

            faults.validate_for(m)
            self._fault_heap = step_agenda(faults)
            heapq.heapify(self._fault_heap)
            self._fault_seq = len(self._fault_heap)
            if self._fault_heap:
                self._fault_next = self._fault_heap[0][0]
            # distinct list: crash/recover rebuilds must not touch .workers
            self._live_workers = list(self.workers)
            if config.max_steps is None:
                # downtime and re-executed work stretch the schedule
                self.max_steps += (
                    int(math.ceil(faults.horizon)) + 50 * total_work + 10_000
                )
        self.perf = PerfCounters()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, observer=None) -> ScheduleResult:
        """Execute to completion.

        ``observer``, if given, is called as ``observer(self)`` once per
        simulated step *after* arrivals are admitted and *before* workers
        act — the instant the potential-function analysis reasons about.
        Used by :mod:`repro.analysis.timeline` and the theory tests.
        """
        self.scheduler.reset(self)
        n = len(self.trace)
        # macro-stepping is only sound when the per-step machinery is pure
        # bulk node execution: no observer watching intermediate states, a
        # default (no-op) on_step hook, no per-step invariant sweep, and
        # identical unit speeds so bulk float math is exact
        macro_ok = (
            observer is None
            and type(self.scheduler).on_step is WsScheduler.on_step
            and not self.config.debug_invariants
            and self.speeds is None
        )
        workers = self._live_workers
        debug = self.config.debug_invariants
        scheduler_on_step = self.scheduler.on_step
        counters = self.counters
        arrivals = self._arrivals
        n_arrivals = len(arrivals)
        flags_immediate = self.config.preempt_check == "step"
        have_faults = self.faults is not None
        speeds = (
            None if self.speeds is None else [float(x) for x in self.speeds]
        )
        max_steps = self.max_steps
        while self._completed < n:
            step = self.step
            if step > max_steps:
                raise WsimError(
                    f"{self.scheduler.name}: exceeded {max_steps} steps "
                    f"with {self._completed}/{n} jobs done"
                )
            if have_faults and self._fault_next <= step:
                # before arrivals: a worker crashing at t is already gone
                # when a job arriving at t is placed
                self._apply_due_faults()
                workers = self._live_workers
            if self._next_arrival < n_arrivals:
                if arrivals[self._next_arrival][0] <= step:
                    self._admit_arrivals()
            if not self.active:
                # machine idle: jump to the next arrival or fault point
                # (a pending recover/resume can be the only future event)
                nxt = (
                    arrivals[self._next_arrival][0]
                    if self._next_arrival < n_arrivals
                    else None
                )
                if have_faults and self._fault_next < (
                    math.inf if nxt is None else nxt
                ):
                    nxt = int(self._fault_next)
                if nxt is None:
                    break
                self.step = max(step, nxt)
                continue
            if macro_ok:
                # largest k such that k unit steps are pure bulk execution:
                # while every worker stays mid-node, deques are untouched,
                # no steal/admission/idle accounting runs, and preemption
                # flags cannot fire in "steal"/"node" mode (both need an
                # out-of-work or between-nodes worker); "step" mode fires
                # immediately, so any live flag disqualifies the jump.
                # k is bounded so the next arrival is admitted at exactly
                # its release step and no node completes mid-jump.
                if self._next_arrival < n_arrivals:
                    k = arrivals[self._next_arrival][0] - step
                else:
                    k = max_steps + 1 - step
                if have_faults and self._fault_next - step < k:
                    # never jump over a crash/recover/abort point
                    k = int(self._fault_next) - step
                if k >= 2:
                    for worker in workers:
                        cur = worker.current
                        if (
                            cur is None
                            or worker.blocked_until > step
                            or (
                                flags_immediate
                                and worker.flag_target is not None
                            )
                        ):
                            k = 0
                            break
                        # last step that keeps remaining above the
                        # completion threshold (remaining is integer-valued
                        # under unit speeds, so int() truncation is exact);
                        # the completing step runs through the normal path
                        safe = int(cur[0].node_remaining[cur[1]]) - 1
                        if safe < k:
                            if safe < 2:
                                k = 0
                                break
                            k = safe
                    if k >= 2:
                        self._macro_advance(k)
                        continue
            if observer is not None:
                observer(self)
            scheduler_on_step()
            for worker in workers:
                # fast path: a mid-node worker just executes one unit —
                # the flag cannot fire in "steal"/"node" mode (both need
                # the worker between nodes or out of work; a stale flag's
                # lazy cleanup is deferred, which nothing can observe)
                cur = worker.current
                if (
                    cur is None
                    or worker.blocked_until > step
                    or (flags_immediate and worker.flag_target is not None)
                ):
                    # _act inlined, same dispatch order: overhead, flag,
                    # own-deque pop (free, falls through to execute),
                    # scheduler out-of-work
                    if worker.blocked_until > step:
                        counters.overhead_steps += 1
                        continue
                    if worker.flag_target is not None and self._flag_fires(
                        worker
                    ):
                        target = worker.flag_target
                        worker.flag_target = None
                        self.switch_worker(worker, target, preempt=True)
                        continue
                    if cur is None:
                        dq = worker.dq
                        if dq is not None and dq.nodes:
                            cur = worker.current = dq.nodes.pop()
                        else:
                            self.scheduler.out_of_work(worker)
                            continue
                job, node = cur
                speed = 1.0 if speeds is None else speeds[worker.wid]
                remaining = job.node_remaining
                before = remaining[node]
                after = before - speed
                remaining[node] = after
                counters.work_steps += speed if speed < before else before
                if after > 1e-9:
                    continue
                # node finished: enable children (Cilk-style — one child
                # continues in place, a second goes to the deque bottom);
                # JobRun.ready_children inlined (child2 implies child1)
                job.remaining_nodes -= 1
                c1 = job._child1[node]
                if c1 == NO_CHILD:
                    worker.current = None
                else:
                    pend = job.pending_parents
                    pend[c1] -= 1
                    r1 = pend[c1] == 0
                    c2 = job._child2[node]
                    if c2 == NO_CHILD:
                        worker.current = (job, c1) if r1 else None
                    else:
                        pend[c2] -= 1
                        if pend[c2] == 0:
                            if r1:
                                self._deque_for(worker, job).push_bottom(
                                    (job, c1)
                                )
                                worker.current = (job, c2)
                            else:
                                worker.current = (job, c2)
                        else:
                            worker.current = (job, c1) if r1 else None
                if job.remaining_nodes == 0:
                    self.complete_job(job)
            if debug:
                self._check_invariants()
            self.step = step + 1
        if np.isnan(self._flow_steps).any():
            raise WsimError(f"{self.scheduler.name}: unfinished jobs at end")
        fault_extra = {}
        if self.faults is not None:
            for worker in self.workers:
                if worker.down:  # run ended inside a crash window
                    counters.dead_steps += self.step - worker.scratch[
                        "down_since"
                    ]
                    worker.scratch["down_since"] = self.step
            fault_extra["faults"] = {
                "plan": self.faults.name,
                "crashes": counters.crashes,
                "aborts": counters.aborts,
                "lost_work": counters.lost_work,
                "dead_steps": counters.dead_steps,
                "log": [dict(e) for e in self._fault_log],
            }
        total_speed = float(self.m if self.speeds is None else self.speeds.sum())
        max_speed = float(1.0 if self.speeds is None else self.speeds.max())
        return ScheduleResult(
            scheduler=self.scheduler.name,
            m=self.m,
            flow_times=self._flow_steps.copy(),
            preemptions=self.counters.preemptions,
            migrations=self.counters.node_migrations,
            steal_attempts=self.counters.steal_attempts,
            muggings=self.counters.muggings,
            makespan=float(self.step),
            min_flows=np.array(
                [
                    max(
                        spec.dag.work / total_speed,
                        float(spec.dag.span) / max_speed,
                        1.0,
                    )
                    for spec in self.trace.jobs
                ]
            ),
            extra={
                "switches": self.counters.switches,
                "work_steps": self.counters.work_steps,
                "failed_steals": self.counters.failed_steals,
                "idle_steps": self.counters.idle_steps,
                "overhead_steps": self.counters.overhead_steps,
                "admissions": self.counters.admissions,
                "utilization": (
                    self.counters.work_steps / (self.step * total_speed)
                    if self.step
                    else 0.0
                ),
                "perf": self._perf_snapshot(),
                **fault_extra,
            },
        )

    def _perf_snapshot(self) -> dict:
        self.perf.events = self.step
        return self.perf.as_dict()

    # ------------------------------------------------------------------
    # faults (repro.faults)
    # ------------------------------------------------------------------

    def up_workers(self) -> "list[Worker]":
        """Workers currently alive — what schedulers must iterate.

        Identical to :attr:`workers` (the same list object) when no fault
        plan is attached, so the no-fault path pays nothing.
        """
        return self._live_workers

    def _apply_due_faults(self) -> None:
        heap = self._fault_heap
        step = self.step
        while heap and heap[0][0] <= step:
            _, _, action = heapq.heappop(heap)
            kind = action["kind"]
            entry = {"kind": kind, "step": step, "applied": True}
            if kind == "crash":
                proc = int(action["proc"])
                entry["proc"] = proc
                worker = self.workers[proc]
                depth = worker.scratch.get("crash_depth", 0)
                worker.scratch["crash_depth"] = depth + 1
                if depth == 0:
                    self._kill_worker(worker)
                else:
                    entry["applied"] = False  # already down (nested window)
            elif kind == "recover":
                proc = int(action["proc"])
                entry["proc"] = proc
                worker = self.workers[proc]
                depth = worker.scratch.get("crash_depth", 1) - 1
                worker.scratch["crash_depth"] = depth
                if depth == 0:
                    self._revive_worker(worker)
                else:
                    entry["applied"] = False
            elif kind == "abort":
                entry["job_id"] = int(action["job_id"])
                entry["applied"] = self._abort_job(
                    int(action["job_id"]), int(action["resubmit_after"])
                )
            elif kind == "resume":
                job_id = int(action["job_id"])
                entry["job_id"] = job_id
                spec = self.trace.jobs[job_id]
                # fresh JobRun with the *original* release step: all work
                # re-executes, but flow time still counts from first release
                job = JobRun(spec, int(math.ceil(spec.release)))
                self.scheduler.on_arrival(job)
            self._fault_log.append(entry)
        self._fault_next = heap[0][0] if heap else math.inf
        self._live_workers = [w for w in self.workers if not w.down]

    def _kill_worker(self, worker: Worker) -> None:
        """Crash ``worker``: its partial node re-executes, its deque moves on.

        The in-progress node loses its partial execution (counted in
        ``lost_work``) and goes back to full weight.  In affinity mode the
        worker's non-empty deque is orphaned *muggable* — the job's other
        workers adopt it through normal stealing, the Sec. IV-A handover.
        In global-pool mode the deque's nodes move to the first live
        worker (or a runtime orphan list when none exists, drained on the
        next revival).
        """
        counters = self.counters
        counters.crashes += 1
        worker.down = True
        worker.scratch["down_since"] = self.step
        self._live_workers = [w for w in self.workers if not w.down]
        cur = worker.current
        if cur is not None:
            job, node = cur
            weight = float(job.dag.weights[node])
            executed = weight - job.node_remaining[node]
            if executed > 0:
                counters.lost_work += executed
                job.node_remaining[node] = weight
            self._deque_for(worker, job).push_bottom(cur)
            worker.current = None
        dq = worker.dq
        if dq is not None:
            if dq.nodes:
                if self.scheduler.affinity:
                    dq.owner = None  # muggable: stays with the job
                else:
                    target = self._live_workers[0] if self._live_workers else None
                    if target is not None:
                        if target.dq is None:
                            target.dq = WsDeque(job=None, owner=target.wid)
                        target.dq.nodes.extend(dq.nodes)
                    else:
                        self._orphans.extend(dq.nodes)
                    dq.nodes.clear()
            if not dq.nodes and dq.job is not None:
                dq.job.drop_deque(dq)
            worker.dq = None
        if worker.job is not None:
            worker.job.workers -= 1
            worker.job = None
        worker.flag_target = None
        worker.blocked_until = 0

    def _revive_worker(self, worker: Worker) -> None:
        """Bring a crashed worker back; the scheduler re-engages it."""
        self.counters.dead_steps += self.step - worker.scratch["down_since"]
        worker.down = False
        self._live_workers = [w for w in self.workers if not w.down]
        if not self.scheduler.affinity:
            worker.dq = WsDeque(job=None, owner=worker.wid)
            if self._orphans:
                worker.dq.nodes.extend(self._orphans)
                self._orphans.clear()
        # affinity mode: the worker is out of work next step and the
        # scheduler's out_of_work re-draw puts it on a job

    def _abort_job(self, job_id: int, resubmit_after: int) -> bool:
        """Kill an active job everywhere; schedule its resubmission."""
        job = next((j for j in self.active if j.job_id == job_id), None)
        if job is None:
            return False  # pending, finished, or already aborted
        counters = self.counters
        counters.aborts += 1
        executed = float(job.dag.work) - sum(
            r for r in job.node_remaining if r > 0
        )
        if executed > 0:
            counters.lost_work += executed
        for worker in self.workers:
            if worker.current is not None and worker.current[0] is job:
                worker.current = None
            if worker.flag_target is job:
                worker.flag_target = None
            dq = worker.dq
            if dq is not None and dq.nodes:
                kept = [ref for ref in dq.nodes if ref[0] is not job]
                if len(kept) != len(dq.nodes):
                    dq.nodes.clear()
                    dq.nodes.extend(kept)
            if worker.job is job:
                worker.job = None
        if self._orphans:
            self._orphans = [ref for ref in self._orphans if ref[0] is not job]
        for dq in job.deques:
            dq.nodes.clear()
        job.deques.clear()
        job.workers = 0
        self.active.remove(job)
        self.scheduler.on_abort(job)
        heapq.heappush(
            self._fault_heap,
            (
                self.step + resubmit_after,
                self._fault_seq,
                {"kind": "resume", "job_id": job_id},
            ),
        )
        self._fault_seq += 1
        return True

    # ------------------------------------------------------------------
    # arrivals / completions
    # ------------------------------------------------------------------

    def _admit_arrivals(self) -> None:
        while (
            self._next_arrival < len(self._arrivals)
            and self._arrivals[self._next_arrival][0] <= self.step
        ):
            release_step, spec = self._arrivals[self._next_arrival]
            self._next_arrival += 1
            job = JobRun(spec, release_step)
            self.scheduler.on_arrival(job)

    def complete_job(self, job: JobRun) -> None:
        """Called by :meth:`_act` when a job's last node finishes."""
        job.finish_step = self.step
        # completion at the end of this step; arrival at the start of its
        # release step, so flow >= 1 for any job with work
        self._flow_steps[job.job_id] = self.step + 1 - job.release_step
        self._completed += 1
        if job in self.active:
            self.active.remove(job)
        self.scheduler.on_completion(job)

    # ------------------------------------------------------------------
    # macro-stepping
    # ------------------------------------------------------------------

    def _macro_advance(self, k: int) -> None:
        """Advance every worker ``k`` unit steps in one update.

        Exactness: remaining work is integer-valued under unit speeds, so
        one ``-= float(k)`` equals ``k`` subtractions of 1.0, and each
        skipped step would have added exactly 1.0 work per worker.
        """
        fk = float(k)
        counters = self.counters
        for worker in self._live_workers:
            job, node = worker.current
            job.node_remaining[node] -= fk
            counters.work_steps += fk
        self.step += k
        self.perf.macro_jumps += 1
        self.perf.macro_steps_saved += k - 1

    # ------------------------------------------------------------------
    # per-worker step
    # ------------------------------------------------------------------

    def _flag_fires(self, worker: Worker) -> bool:
        if worker.flag_target is None:
            return False
        if worker.flag_target.done:
            worker.flag_target = None  # stale flag: target already finished
            return False
        mode = self.config.preempt_check
        if mode == "step":
            return True
        if mode == "node":
            return worker.current is None
        return worker.out_of_work  # "steal"

    def _act(self, worker: Worker) -> None:
        if worker.blocked_until > self.step:
            self.counters.overhead_steps += 1
            return  # paying preemption overhead
        if worker.flag_target is not None and self._flag_fires(worker):
            target = worker.flag_target
            worker.flag_target = None
            self.switch_worker(worker, target, preempt=True)
            return
        if worker.current is None:
            dq = worker.dq
            if dq is not None and dq.nodes:
                # popping one's own deque is free; fall through to execute
                worker.current = dq.pop_bottom()
            else:
                self.scheduler.out_of_work(worker)
                return
        if worker.current is not None:
            self._execute_unit(worker)
        else:
            self.counters.idle_steps += 1

    def _execute_unit(self, worker: Worker) -> None:
        job, node = worker.current
        speed = 1.0 if self.speeds is None else float(self.speeds[worker.wid])
        remaining = job.node_remaining
        before = remaining[node]
        after = before - speed
        remaining[node] = after
        # account actual units done; a fast worker overshooting a node's
        # end wastes the excess (realistic granularity cost)
        self.counters.work_steps += speed if speed < before else before
        if after > 1e-9:
            return
        # node finished: enable children
        job.remaining_nodes -= 1
        ready = job.ready_children(node)
        if len(ready) == 2:
            self._deque_for(worker, job).push_bottom((job, ready[0]))
            worker.current = (job, ready[1])
        elif len(ready) == 1:
            worker.current = (job, ready[0])
        else:
            worker.current = None
        if job.remaining_nodes == 0:
            self.complete_job(job)

    def _deque_for(self, worker: Worker, job: JobRun) -> WsDeque:
        """The worker's deque, created lazily on first push."""
        if worker.dq is None:
            dq = WsDeque(job=job if self.scheduler.affinity else None, owner=worker.wid)
            worker.dq = dq
            if self.scheduler.affinity:
                job.deques.append(dq)
        return worker.dq

    # ------------------------------------------------------------------
    # scheduler services
    # ------------------------------------------------------------------

    def switch_worker(
        self, worker: Worker, target: JobRun | None, preempt: bool
    ) -> None:
        """Detach ``worker`` from its job and attach it to ``target``.

        Affinity-mode semantics from Sec. IV-A: a partially executed node
        goes back on the worker's deque; a non-empty deque is marked
        muggable and stays with the old job; an empty one is deallocated.
        Costs the caller's step.  ``preempt=True`` counts toward the
        Theorem 1.2 preemption budget when the old job is unfinished.
        """
        old = worker.job
        if old is not None and old is target:
            return
        if worker.current is not None:
            job, _node = worker.current
            self._deque_for(worker, job).push_bottom(worker.current)
            worker.current = None
        if worker.dq is not None:
            if worker.dq.nodes:
                worker.dq.owner = None  # becomes muggable
            else:
                if worker.dq.job is not None:
                    worker.dq.job.drop_deque(worker.dq)
            worker.dq = None
        if old is not None:
            old.workers -= 1
            if preempt and not old.done:
                self.counters.preemptions += 1
                if self.config.preemption_overhead:
                    # state save/restore stalls this worker (Sec. I)
                    worker.blocked_until = (
                        self.step + 1 + self.config.preemption_overhead
                    )
        if old is not target:
            self.counters.switches += 1
        worker.job = target
        if target is not None:
            target.workers += 1

    def steal_within(self, worker: Worker, job: JobRun) -> bool:
        """One steal attempt among ``job``'s deques (affinity mode).

        Picks a victim uniformly at random among the job's other deques.
        A muggable victim is mugged: the thief adopts the whole deque and
        takes its bottom node (a mugging "can always do at least one unit
        of work").  An active victim loses its top node.  Returns True on
        success; always costs the step.
        """
        counters = self.counters
        counters.steal_attempts += 1
        dq = worker.dq
        # worker.dq is usually None for a thief; skip the filtering copy
        victims = job.deques if dq is None else [d for d in job.deques if d is not dq]
        if not victims:
            counters.failed_steals += 1
            return False
        victim = victims[int(self._rng_integers(len(victims)))]
        nodes = victim.nodes
        if victim.owner is None:  # muggable
            # mugging: adopt the deque wholesale (always succeeds, and the
            # thief "can always do at least one unit of work" — Sec. IV-A)
            if dq is not None:
                if dq.nodes:
                    raise WsimError("thief with non-empty deque attempted a mug")
                if dq.job is not None:
                    dq.job.drop_deque(dq)
            victim.owner = worker.wid
            worker.dq = victim
            worker.current = nodes.pop()
            counters.muggings += 1
            counters.node_migrations += 1
            return True
        if nodes:
            worker.current = nodes.popleft()
            counters.node_migrations += 1
            return True
        counters.failed_steals += 1
        return False

    def steal_from_worker(self, thief: Worker, victim: Worker) -> bool:
        """Classic work stealing between worker deques (global mode)."""
        self.counters.steal_attempts += 1
        dq = victim.dq
        if dq is None or not dq.nodes:
            self.counters.failed_steals += 1
            return False
        thief.current = dq.steal_top()
        self.counters.node_migrations += 1
        return True

    # ------------------------------------------------------------------
    # invariants (debug)
    # ------------------------------------------------------------------

    def _check_invariants(self) -> None:
        for job in self.active:
            for dq in job.deques:
                if dq.muggable and not dq.nodes:
                    raise WsimError("empty muggable deque")
        seen: set[tuple[int, int]] = set()
        for worker in self.workers:
            if worker.current is not None:
                key = (worker.current[0].job_id, worker.current[1])
                if key in seen:
                    raise WsimError(f"node {key} executed by two workers")
                seen.add(key)
        all_deques = [dq for job in self.active for dq in job.deques]
        all_deques += [w.dq for w in self.workers if w.dq is not None]
        checked: set[int] = set()
        for dq in all_deques:
            if id(dq) in checked:
                continue
            checked.add(id(dq))
            for ref_job, node in dq.nodes:
                key = (ref_job.job_id, node)
                if key in seen:
                    raise WsimError(f"node {key} duplicated")
                seen.add(key)


def simulate_ws(
    trace: Trace,
    m: int,
    scheduler: "WsScheduler",
    seed: int = 0,
    config: WsConfig = WsConfig(),
    speeds: "np.ndarray | None" = None,
    faults=None,
) -> ScheduleResult:
    """Convenience wrapper: build a runtime and run it.

    ``speeds`` (length m, positive) makes workers heterogeneous — the
    related-machines setting for parallel DAG jobs.

    ``faults`` injects a :class:`repro.faults.FaultPlan` — worker crashes
    (deques reassigned, partial nodes re-executed) and job aborts with
    resubmission.  Only crash/abort kinds are supported here; fractional
    slowdowns belong to ``speeds`` or the flow-level simulator.  The
    result's ``extra["faults"]`` reports the applied log, the work lost
    and re-executed, and the worker-steps spent down.
    """
    rt = WsRuntime(
        trace, m, scheduler, seed=seed, config=config, speeds=speeds,
        faults=faults,
    )
    rt.perf.start()
    result = rt.run()
    rt.perf.stop()
    result.extra["perf"] = rt._perf_snapshot()
    return result


# imported late to avoid a cycle (schedulers import runtime helpers' types)
from repro.wsim.schedulers.base import WsScheduler  # noqa: E402
