"""Work-stealing runtime schedulers (paper Sec. V-B)."""

from repro.wsim.schedulers.admit_first import AdmitFirstWS
from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.schedulers.central_greedy import CentralGreedyWS
from repro.wsim.schedulers.drep_ws import DrepWS
from repro.wsim.schedulers.laps_quantum import LapsQuantumWS
from repro.wsim.schedulers.rr_quantum import RrQuantumWS
from repro.wsim.schedulers.steal_first import StealFirstWS
from repro.wsim.schedulers.swf_approx import SwfApproxWS

__all__ = [
    "WsScheduler",
    "DrepWS",
    "SwfApproxWS",
    "StealFirstWS",
    "AdmitFirstWS",
    "CentralGreedyWS",
    "RrQuantumWS",
    "LapsQuantumWS",
    "ws_scheduler_by_name",
]


def ws_scheduler_by_name(name: str, **kwargs) -> WsScheduler:
    """Instantiate a runtime scheduler by its table name."""
    registry = {
        "drep": DrepWS,
        "swf": SwfApproxWS,
        "steal-first": StealFirstWS,
        "admit-first": AdmitFirstWS,
        "central-greedy": CentralGreedyWS,
        "rr": RrQuantumWS,
        "laps": LapsQuantumWS,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; known: {sorted(registry)}") from None
    return cls(**kwargs)
