"""Admit-first scheduling (paper Sec. V-B, from Li et al. PPoPP'16).

The mirror image of steal-first: "whenever a worker runs out of work, it
always admits a new job from the queue, if there is one"; it steals from
random workers only when the queue is empty.

The paper observes that admit-first and DREP perform similarly for
average flow: admit-first keeps at least one worker per job while jobs
are fewer than cores, and its random stealing spreads the remaining
workers roughly equally — the same equi-partition DREP targets.
"""

from __future__ import annotations

from collections import deque

from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.structures import JobRun, Worker, WsDeque

__all__ = ["AdmitFirstWS"]


class AdmitFirstWS(WsScheduler):
    """Admit from the FIFO queue first; steal only when it is empty."""

    name = "admit-first"
    affinity = False
    clairvoyant = False

    def __init__(self) -> None:
        self.queue: deque[JobRun] = deque()

    def reset(self, rt) -> None:
        super().reset(rt)
        self.queue = deque()
        for worker in rt.workers:
            worker.dq = WsDeque(job=None, owner=worker.wid)

    def on_arrival(self, job: JobRun) -> None:
        self.rt.active.append(job)
        self.queue.append(job)

    def on_abort(self, job: JobRun) -> None:
        # the job may still be waiting for admission
        try:
            self.queue.remove(job)
        except ValueError:
            pass

    def out_of_work(self, worker: Worker) -> None:
        rt = self.rt
        if self.queue:
            job = self.queue.popleft()
            self.admit_to_worker(worker, job)
            return
        victims = [w for w in rt.up_workers() if w is not worker]
        if not victims:
            self.idle(worker)
            return
        victim = victims[int(self.rng.integers(len(victims)))]
        rt.steal_from_worker(worker, victim)
