"""Scheduler interface for the work-stealing runtime.

Two families share the interface:

* **job-affinity** schedulers (``affinity = True``): workers are assigned
  to jobs and steal only within their job's deque set (DREP, SWF-approx)
  — the deque-per-job design of Sec. IV-A;
* **global-pool** schedulers (``affinity = False``): one permanent deque
  per worker, steals go worker-to-worker and a FIFO queue feeds new jobs
  (steal-first, admit-first) — the designs of [Li et al. PPoPP'16] the
  paper compares against in Sec. V-B.

The runtime calls :meth:`on_arrival` when a job's release step is reached,
:meth:`on_completion` when its last node finishes, and :meth:`out_of_work`
when a worker has neither a current node nor anything in its own deque —
that call consumes the worker's time step (steal attempts cost constant
work).
"""

from __future__ import annotations

import abc
import typing

from repro.wsim.structures import JobRun, Worker, WsDeque

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.wsim.runtime import WsRuntime

__all__ = ["WsScheduler"]


class WsScheduler(abc.ABC):
    """Base class for runtime schedulers."""

    name: str = "ws-scheduler"
    #: True for deque-per-job schedulers (DREP, SWF-approx).
    affinity: bool = True
    #: True if the scheduler needs job sizes up front (SWF-approx).
    clairvoyant: bool = False

    def reset(self, rt: "WsRuntime") -> None:
        """Bind to a runtime at the start of a run."""
        self.rt = rt
        self.rng = rt.rng

    @abc.abstractmethod
    def on_arrival(self, job: JobRun) -> None:
        """A job just arrived.  Must append it to ``rt.active``."""

    def on_completion(self, job: JobRun) -> None:
        """A job just finished (already removed from ``rt.active``)."""

    def on_abort(self, job: JobRun) -> None:
        """A fault plan just killed ``job`` (repro.faults).

        Called *after* the runtime purged the job's nodes from every deque
        and detached its workers, and after it left ``rt.active``.
        Schedulers holding their own references (e.g. a FIFO admission
        queue) must drop them here; the resubmitted job arrives later as a
        brand-new :class:`JobRun` through :meth:`on_arrival`.
        """

    def on_step(self) -> None:
        """Called once per simulated step, before workers act.

        Default no-op; quantum-based schedulers (RR) use it to trigger
        periodic re-partitioning.
        """

    @abc.abstractmethod
    def out_of_work(self, worker: Worker) -> None:
        """Spend ``worker``'s step finding work (steal / mug / admit)."""

    def steal_target(self, worker: Worker) -> "JobRun | None":
        """The job :meth:`out_of_work` would steal from, or ``None``.

        Event-horizon contract (opt-in, perf only): return job ``J`` iff
        :meth:`out_of_work`, called on ``worker`` in its *current* state,
        would do exactly ``rt.steal_within(worker, J)`` and nothing else —
        no admission, no job redraw, no idling, no other side effect.
        The runtime uses this to fast-forward steal-stuck phases: when
        every victim deque of ``J`` is active-and-empty the attempt
        provably fails, so ``k`` consecutive failed attempts are replayed
        as counter bumps plus one batched victim draw (bit-identical to
        the per-step scalar draws; see ``WsRuntime._horizon_jump``).
        The answer must stay valid while no deque, flag or assignment
        changes.  Returning ``None`` (the default) excludes the worker
        from bulk jumps; it can never affect results, only speed.
        """
        return None

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def arm_flag(self, worker: Worker, target: "JobRun | None") -> None:
        """Arm (``target`` set) or clear (``None``) a preemption flag.

        Contract: schedulers must notify flag state through this helper
        (it delegates to :meth:`WsRuntime.arm_flag`) rather than writing
        ``worker.flag_target`` directly, so the runtime's armed-flag
        count stays accurate — the event-horizon kernel uses that count
        as a fast bulk-jump veto when flags fire immediately
        (``preempt_check="step"``).  A direct write is still *safe* (the
        kernel re-verifies per worker before any jump) but forfeits the
        fast veto.
        """
        self.rt.arm_flag(worker, target)

    def make_arrival_deque(self, job: JobRun) -> WsDeque:
        """Park a new job's source nodes on a muggable deque (affinity).

        The first worker that joins the job will mug it.  Source nodes
        exist for every valid DAG, so the deque is never empty — keeping
        the Sec. IV-A invariant.
        """
        dq = WsDeque(job=job, owner=None)
        for src in job.dag.sources():
            dq.push_bottom((job, int(src)))
        job.deques.append(dq)
        return dq

    def admit_to_worker(self, worker: Worker, job: JobRun) -> None:
        """Global-pool admission: the worker starts the job's sources.

        The first source becomes the worker's current node (it can begin
        executing next step); remaining sources go on its deque.
        """
        sources = [int(s) for s in job.dag.sources()]
        worker.current = (job, sources[0])
        if len(sources) > 1:
            if worker.dq is None:
                worker.dq = WsDeque(job=None, owner=worker.wid)
            for src in sources[1:]:
                worker.dq.push_bottom((job, src))
        self.rt.counters.admissions += 1

    def idle(self, worker: Worker) -> None:
        """Record a wasted step (nothing to steal, nothing to admit)."""
        self.rt.counters.idle_steps += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
