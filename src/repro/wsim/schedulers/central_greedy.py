"""Centralized greedy (list) scheduling — the Sec. I overhead straw man.

The paper's introduction recalls that a greedy / list scheduler is
(2 - 2/m)-competitive for makespan but "the property of work conserving
is expensive to maintain precisely": it needs a centralized queue of
ready nodes that every processor hits every step.  Work stealing exists
to avoid exactly that.

This scheduler gives the runtime simulator that idealized greedy: one
global ready queue shared by all workers, with nodes taken FIFO across
all active jobs, and **no steal cost** — a worker with no node takes one
from the global queue in the same step it starts executing.  It is
therefore an *upper bound on how much the decentralization costs*:
comparing DREP/steal-first/admit-first against it isolates the overhead
of steals, muggings and admission policies from the scheduling decisions
themselves.  (It is FIFO-biased for average flow, so it is an overhead
baseline, not a flow-time contender.)
"""

from __future__ import annotations

from collections import deque

from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.structures import JobRun, Worker, WsDeque

__all__ = ["CentralGreedyWS"]


class CentralGreedyWS(WsScheduler):
    """Work-conserving greedy with a global ready-node queue."""

    name = "central-greedy"
    affinity = False
    clairvoyant = False

    def __init__(self) -> None:
        self.ready: deque = deque()  # global FIFO of (job, node) refs

    def reset(self, rt) -> None:
        super().reset(rt)
        self.ready = deque()
        for worker in rt.workers:
            # one permanent deque per worker; overflow nodes spill into it
            worker.dq = WsDeque(job=None, owner=worker.wid)

    def on_arrival(self, job: JobRun) -> None:
        self.rt.active.append(job)
        for src in job.dag.sources():
            self.ready.append((job, int(src)))

    def on_abort(self, job: JobRun) -> None:
        # purge any of the job's nodes still sitting in the global queue
        self.ready = deque(ref for ref in self.ready if ref[0] is not job)

    def out_of_work(self, worker: Worker) -> None:
        """Take the next globally ready node.

        Taking from the global queue is free of charge — deliberately
        idealized: the real cost of the centralized queue is
        synchronization, which a sequential simulator cannot charge
        honestly, so we charge nothing and treat the result as a bound.
        (Queue entries are job sources, ready since their arrival step,
        so same-step execution cannot violate critical-path causality.)

        Draining overflow from another worker's local deque still costs
        the step: the node may have been enabled earlier in this very
        step, and executing it immediately would let two units of one
        path finish in a single time step.
        """
        if self.ready:
            worker.current = self.ready.popleft()
            self.rt._execute_unit(worker)  # work-conserving: no lost step
            return
        donors = [
            w for w in self.rt.up_workers() if w.dq is not None and w.dq.nodes
        ]
        if donors:
            victim = donors[int(self.rng.integers(len(donors)))]
            worker.current = victim.dq.steal_top()
            return  # execution starts next step
        self.idle(worker)
