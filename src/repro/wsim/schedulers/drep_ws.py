"""DREP combined with work stealing (paper Sec. IV-A / V-B).

The runtime analogue of the paper's Cilk Plus implementation:

* each worker is assigned to one active job and steals only among that
  job's deques;
* on a **job arrival**, free workers take the new job outright; each busy
  worker is flagged to switch with probability ``1/|A(t)|`` by the master
  (the flag is honored at the granularity configured in
  :class:`~repro.wsim.runtime.WsConfig` — steal attempts by default,
  matching the paper's implementation);
* a switching worker leaves its deque behind **muggable**; workers of the
  job steal as usual, and a thief that picks a muggable victim *mugs* it,
  adopting the whole deque;
* on a **job completion**, each worker of the finished job re-draws a job
  uniformly at random from the remaining active jobs.

Preemptions therefore happen only on arrivals — the property behind
Theorem 1.2's O(mn) switch bound.
"""

from __future__ import annotations

from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.structures import JobRun, Worker

__all__ = ["DrepWS"]


class DrepWS(WsScheduler):
    """Distributed Random Equi-Partition over work stealing."""

    name = "DREP"
    affinity = True
    clairvoyant = False

    def reset(self, rt) -> None:
        super().reset(rt)
        # bound-method cache: out_of_work fires thousands of times per
        # run and the two-hop attribute chain is measurable there
        self._steal = rt.steal_within

    def on_arrival(self, job: JobRun) -> None:
        rt = self.rt
        rt.active.append(job)
        self.make_arrival_deque(job)
        n_active = len(rt.active)  # includes the newcomer
        for worker in rt.up_workers():
            if worker.job is None or worker.job.done:
                # an idle worker takes the new job immediately (it was idle
                # only because the machine had drained)
                rt.switch_worker(worker, job, preempt=False)
                self.arm_flag(worker, None)
            elif worker.job is not job:
                if self.rng.random() < 1.0 / n_active:
                    self.arm_flag(worker, job)

    def on_completion(self, job: JobRun) -> None:
        rt = self.rt
        for worker in rt.up_workers():
            if worker.job is job:
                active = rt.active
                if active:
                    # integers(1) returns 0 without consuming generator
                    # state (tests/wsim/test_rng_draws.py), so a
                    # single-job redraw skips the call — same sequence
                    pick = (
                        active[0]
                        if len(active) == 1
                        else active[int(self.rng.integers(len(active)))]
                    )
                    rt.switch_worker(worker, pick, preempt=False)
                else:
                    rt.switch_worker(worker, None, preempt=False)
                self.arm_flag(worker, None)

    def steal_target(self, worker: Worker) -> JobRun | None:
        # mirrors out_of_work: a worker on an unfinished job only steals
        job = worker.job
        if job is None or job.remaining_nodes == 0:
            return None
        return job

    def out_of_work(self, worker: Worker) -> None:
        job = worker.job
        if job is not None and job.remaining_nodes:
            self._steal(worker, job)
            return
        rt = self.rt
        active = rt.active
        if active:
            pick = (
                active[0]
                if len(active) == 1
                else active[int(self.rng.integers(len(active)))]
            )
            rt.switch_worker(worker, pick, preempt=False)
        else:
            self.idle(worker)
