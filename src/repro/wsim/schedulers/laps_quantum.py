"""Quantum-based LAPS — making the paper's "impossible" policy runnable.

The paper singles LAPS out as uniquely impractical: "LAPS ... is very
difficult to implement since it needs to know the parameter epsilon ...
and preempts at infinitesimal time steps — it must process epsilon
fraction of arriving jobs equally at any time.  Because of this, LAPS is
even difficult to implement in the simulation" (Sec. V-A).

Like :class:`~repro.wsim.schedulers.rr_quantum.RrQuantumWS` does for RR,
this scheduler realizes the *implementable* LAPS: every ``quantum``
steps the master re-partitions all workers evenly across the
``ceil(beta * |A(t)|)`` most recently arrived jobs.  Combined with
``WsConfig.preemption_overhead`` it lets experiments price LAPS's
preemption appetite the same way ablation X7 prices RR's — completing
the set of "theoretically strong but preemption-hungry" baselines the
paper could only discuss.
"""

from __future__ import annotations

import math

from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.structures import JobRun, Worker

__all__ = ["LapsQuantumWS"]


class LapsQuantumWS(WsScheduler):
    """Serve the latest-arriving beta fraction, re-partitioned per quantum."""

    affinity = True
    clairvoyant = False

    def __init__(self, beta: float = 0.5, quantum: int = 50) -> None:
        if not 0 < beta <= 1:
            raise ValueError("beta must be in (0, 1]")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.beta = beta
        self.quantum = quantum
        self.name = f"LAPS(b={beta:g},q={quantum})"
        self._rotation = 0

    def reset(self, rt) -> None:
        super().reset(rt)
        self._rotation = 0

    def _served_set(self) -> list[JobRun]:
        jobs = self.rt.active
        if not jobs:
            return []
        k = max(1, math.ceil(self.beta * len(jobs)))
        latest = sorted(jobs, key=lambda j: (j.release_step, j.job_id))[-k:]
        return latest

    def _repartition(self) -> None:
        rt = self.rt
        served = self._served_set()
        if not served:
            return
        n = len(served)
        for worker in rt.up_workers():
            if worker.blocked_until > rt.step:
                continue
            target = served[(worker.wid + self._rotation) % n]
            if worker.job is not target:
                rt.switch_worker(worker, target, preempt=True)
        self._rotation += 1

    def on_step(self) -> None:
        if self.rt.step % self.quantum == 0:
            self._repartition()

    def on_arrival(self, job: JobRun) -> None:
        rt = self.rt
        rt.active.append(job)
        self.make_arrival_deque(job)
        for worker in rt.up_workers():
            if worker.job is None or worker.job.done:
                rt.switch_worker(worker, job, preempt=False)

    def on_completion(self, job: JobRun) -> None:
        rt = self.rt
        served = self._served_set()
        for worker in rt.up_workers():
            if worker.job is job:
                if served:
                    pick = served[int(self.rng.integers(len(served)))]
                    rt.switch_worker(worker, pick, preempt=False)
                else:
                    rt.switch_worker(worker, None, preempt=False)

    def out_of_work(self, worker: Worker) -> None:
        rt = self.rt
        job = worker.job
        if job is None or job.done:
            served = self._served_set()
            if served:
                pick = served[int(self.rng.integers(len(served)))]
                rt.switch_worker(worker, pick, preempt=False)
            else:
                self.idle(worker)
            return
        if not rt.steal_within(worker, job):
            # a served job may have no stealable nodes left for this
            # worker; spinning is LAPS-faithful (it must not help old
            # jobs), so the failed attempt simply costs the step
            pass
