"""Quantum-based round-robin equi-partition — the OS-style RR baseline.

The paper's theory comparisons lean on RR/EQUI, but "RR ... [has] the
advantage of very frequent preemptions" (Sec. V-A) and is therefore
impractical: a real system can only approximate it by re-partitioning
processors every scheduling *quantum*, paying a preemption each time a
worker moves.

This scheduler realizes that approximation inside the runtime simulator:
every ``quantum`` steps the master re-partitions workers evenly across
the active jobs (rotating assignments so every job gets served), using
the same muggable-deque mechanics as DREP for preempted work.  Together
with :attr:`~repro.wsim.runtime.WsConfig.preemption_overhead` it turns
the paper's qualitative "RR preempts too much to be practical" into a
measurable crossover (ablation X7): as the per-preemption cost grows,
quantum-RR degrades while DREP — which preempts only on arrivals — holds.
"""

from __future__ import annotations

from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.structures import JobRun, Worker

__all__ = ["RrQuantumWS"]


class RrQuantumWS(WsScheduler):
    """Re-partition workers evenly across jobs every ``quantum`` steps."""

    affinity = True
    clairvoyant = False

    def __init__(self, quantum: int = 50) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self.name = f"RR(q={quantum})"
        self._rotation = 0

    def reset(self, rt) -> None:
        super().reset(rt)
        self._rotation = 0

    def _repartition(self) -> None:
        """Assign worker i to active job (i + rotation) mod |A|."""
        rt = self.rt
        jobs = rt.active
        if not jobs:
            return
        n = len(jobs)
        for worker in rt.up_workers():
            if worker.blocked_until > rt.step:
                continue  # still paying a previous preemption's overhead
            target = jobs[(worker.wid + self._rotation) % n]
            if worker.job is not target:
                rt.switch_worker(worker, target, preempt=True)
        self._rotation += 1

    def on_step(self) -> None:
        if self.rt.step % self.quantum == 0:
            self._repartition()

    def on_arrival(self, job: JobRun) -> None:
        rt = self.rt
        rt.active.append(job)
        self.make_arrival_deque(job)
        # idle workers join immediately; busy ones wait for the quantum
        for worker in rt.up_workers():
            if worker.job is None or worker.job.done:
                rt.switch_worker(worker, job, preempt=False)

    def on_completion(self, job: JobRun) -> None:
        rt = self.rt
        for worker in rt.up_workers():
            if worker.job is job:
                if rt.active:
                    pick = rt.active[int(self.rng.integers(len(rt.active)))]
                    rt.switch_worker(worker, pick, preempt=False)
                else:
                    rt.switch_worker(worker, None, preempt=False)

    def out_of_work(self, worker: Worker) -> None:
        rt = self.rt
        job = worker.job
        if job is None or job.done:
            if rt.active:
                pick = rt.active[int(self.rng.integers(len(rt.active)))]
                rt.switch_worker(worker, pick, preempt=False)
            else:
                self.idle(worker)
            return
        rt.steal_within(worker, job)
