"""Steal-first scheduling (paper Sec. V-B, from Li et al. PPoPP'16).

A global-pool work-stealing variant with a FIFO queue of not-yet-started
jobs.  A worker that runs out of work *steals first*: it keeps trying
random victims among the other workers ("favoring jobs that have started
processing") and only admits a new job from the queue after a budget of
failed steal attempts.  The paper's implementation "only bears 2n number
of failed stealing attempts before admitting a new job" and notes that
performance degrades with a larger budget — ablation X2 sweeps it.

Steal-first approximates FIFO and was shown to work well for *max* flow
time [18]; Figure 3 shows it is the weakest of the four for *average*
flow at high load.
"""

from __future__ import annotations

from collections import deque

from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.structures import JobRun, Worker, WsDeque

__all__ = ["StealFirstWS"]


class StealFirstWS(WsScheduler):
    """Steal among started jobs; admit from the FIFO queue as a last resort."""

    affinity = False
    clairvoyant = False

    def __init__(self, steal_budget_factor: float = 2.0) -> None:
        if steal_budget_factor < 0:
            raise ValueError("steal_budget_factor must be >= 0")
        self.steal_budget_factor = steal_budget_factor
        self.name = (
            "steal-first"
            if steal_budget_factor == 2.0
            else f"steal-first({steal_budget_factor:g}m)"
        )
        self.queue: deque[JobRun] = deque()

    def reset(self, rt) -> None:
        super().reset(rt)
        self.queue = deque()
        for worker in rt.workers:
            worker.dq = WsDeque(job=None, owner=worker.wid)
            worker.failed_steals = 0

    def on_arrival(self, job: JobRun) -> None:
        self.rt.active.append(job)
        self.queue.append(job)

    def on_abort(self, job: JobRun) -> None:
        # the job may still be waiting for admission
        try:
            self.queue.remove(job)
        except ValueError:
            pass

    def _admit(self, worker: Worker) -> bool:
        if not self.queue:
            return False
        job = self.queue.popleft()
        self.admit_to_worker(worker, job)
        worker.failed_steals = 0
        return True

    def out_of_work(self, worker: Worker) -> None:
        rt = self.rt
        budget = self.steal_budget_factor * rt.m
        victims = [w for w in rt.up_workers() if w is not worker]
        exhausted = worker.failed_steals >= budget or not victims
        if exhausted and self._admit(worker):
            return
        if victims:
            victim = victims[int(self.rng.integers(len(victims)))]
            if rt.steal_from_worker(worker, victim):
                worker.failed_steals = 0
                return
            worker.failed_steals += 1
        else:
            # nobody to steal from and nothing to admit: a wasted step
            self.idle(worker)
