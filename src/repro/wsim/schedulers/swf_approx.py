"""Approximated Smallest-Work-First over work stealing (paper Sec. V-B).

The clairvoyant comparison point in Figure 3: "every worker when running
out of work, checks every active job in the system and works on the job
with the smallest amount of work".  Crucially it is an *approximation* of
SWF: a worker only re-evaluates when it runs out of work, so — unlike the
theoretical SWF — it "cannot immediately preempt the execution of a large
job to work on the newly available work from a smaller job".

Implementation detail: among the smallest-work jobs we prefer one that
currently has stealable nodes (non-empty or muggable deques) so workers
do not spin on a small job whose only work is a single executing node
while other jobs starve; ties and the no-stealable-work fallback go to
the smallest job overall.
"""

from __future__ import annotations

from repro.wsim.schedulers.base import WsScheduler
from repro.wsim.structures import JobRun, Worker

__all__ = ["SwfApproxWS"]


def _has_stealable_work(job: JobRun) -> bool:
    return any(d.nodes for d in job.deques)


class SwfApproxWS(WsScheduler):
    """Workers gravitate to the smallest-work active job when idle."""

    name = "SWF"
    affinity = True
    clairvoyant = True

    def _target(self) -> JobRun | None:
        """Smallest-work active job, preferring ones with stealable work."""
        active = self.rt.active
        if not active:
            return None
        with_work = [j for j in active if _has_stealable_work(j)]
        pool = with_work or active
        return min(pool, key=lambda j: (j.spec.work, j.job_id))

    def on_arrival(self, job: JobRun) -> None:
        rt = self.rt
        rt.active.append(job)
        self.make_arrival_deque(job)
        # only idle workers react immediately; busy ones re-evaluate when
        # they next run out of work (that is the approximation)
        for worker in rt.up_workers():
            if worker.job is None or worker.job.done:
                target = self._target()
                if target is not None:
                    rt.switch_worker(worker, target, preempt=False)

    def on_completion(self, job: JobRun) -> None:
        rt = self.rt
        for worker in rt.up_workers():
            if worker.job is job:
                rt.switch_worker(worker, self._target(), preempt=False)

    def steal_target(self, worker: Worker) -> JobRun | None:
        # mirrors out_of_work's final branch.  Stable within a bulk
        # window: _target keys on static spec.work and deque emptiness,
        # neither of which changes while no node completes.
        target = self._target()
        if target is None or worker.job is not target:
            return None
        return target

    def out_of_work(self, worker: Worker) -> None:
        rt = self.rt
        target = self._target()
        if target is None:
            self.idle(worker)
            return
        if worker.job is not target:
            # moving to the smallest job costs the step (preemption is a
            # switch away from an unfinished job, per Theorem 1.2 counting)
            rt.switch_worker(worker, target, preempt=True)
            return
        rt.steal_within(worker, target)
