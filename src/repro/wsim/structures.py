"""Runtime data structures: per-job runs, deques and workers.

These mirror the modified-Cilk-Plus design of the paper (Sec. IV-A, V-B):

* **deques are associated with jobs, not processors** — each running job
  ``J_i`` owns a set of ``d_i(t)`` deques, ``p_i(t)`` of them *active*
  (assigned to a worker) and the rest *muggable*;
* muggable deques are never empty (an empty deque is deallocated instead
  of being marked muggable);
* a worker holds at most one deque and at most one executing node.

The same structures serve the global-pool schedulers (steal-first,
admit-first), where every deque simply stays owned by its worker for the
whole run and the ``job`` affinity is unused.
"""

from __future__ import annotations

from collections import deque as _deque
from dataclasses import dataclass, field

from repro.core.job import JobSpec
from repro.dag.graph import NO_CHILD, DagJob

__all__ = ["NodeRef", "WsDeque", "JobRun", "Worker"]


#: A node is identified by its job run plus its index in the job's DAG.
NodeRef = tuple["JobRun", int]


class WsDeque:
    """A double-ended queue of ready nodes, stored as ``(job, node)`` refs.

    The owner pushes/pops at the **bottom**; thieves steal from the
    **top**.  ``owner is None`` marks the deque muggable (only meaningful
    under job-affinity schedulers, where ``job`` records which job the
    deque belongs to).  Global-pool schedulers leave ``job`` unset and may
    mix nodes of different jobs on one deque — the refs disambiguate.
    """

    __slots__ = ("nodes", "job", "owner")

    def __init__(self, job: "JobRun | None", owner: int | None) -> None:
        self.nodes: _deque[NodeRef] = _deque()
        self.job = job
        self.owner = owner

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def muggable(self) -> bool:
        return self.owner is None

    def push_bottom(self, ref: NodeRef) -> None:
        self.nodes.append(ref)

    def pop_bottom(self) -> NodeRef:
        return self.nodes.pop()

    def steal_top(self) -> NodeRef:
        return self.nodes.popleft()


class JobRun:
    """Mutable execution state of one DAG job inside the runtime.

    Tracks per-node remaining units (so a preempted, partially executed
    node resumes where it stopped), the not-yet-satisfied parent counts
    that drive readiness, and the job's deque set.
    """

    __slots__ = (
        "spec",
        "dag",
        "node_remaining",
        "pending_parents",
        "remaining_nodes",
        "deques",
        "release_step",
        "finish_step",
        "workers",
        "_child1",
        "_child2",
    )

    def __init__(self, spec: JobSpec, release_step: int) -> None:
        if spec.dag is None:
            raise ValueError(f"job {spec.job_id} has no DAG attached")
        dag: DagJob = spec.dag
        self.spec = spec
        self.dag = dag
        # plain lists, not numpy arrays: the runtime touches single nodes
        # once per step per worker, where python-int indexing is several
        # times cheaper than numpy scalar indexing.  Floats (not ints) so
        # heterogeneous-speed workers can make fractional progress.
        self.node_remaining = dag.weights.astype(float).tolist()
        self.pending_parents = dag.in_degrees().tolist()
        self._child1 = dag.child1.tolist()
        self._child2 = dag.child2.tolist()
        self.remaining_nodes = dag.n_nodes
        self.deques: list[WsDeque] = []
        self.release_step = release_step
        self.finish_step: int | None = None
        self.workers = 0  # p_i(t): workers currently assigned (affinity mode)

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def done(self) -> bool:
        return self.remaining_nodes == 0

    def ready_children(self, node: int) -> list[int]:
        """Decrement the executed node's children; return the newly ready."""
        ready = []
        pend = self.pending_parents
        for c in (self._child1[node], self._child2[node]):
            if c == NO_CHILD:
                continue
            pend[c] -= 1
            if pend[c] == 0:
                ready.append(c)
        return ready

    def drop_deque(self, dq: WsDeque) -> None:
        """Deallocate an (empty) deque; no-op if already removed."""
        if dq.nodes:
            raise ValueError("refusing to drop a non-empty deque")
        try:
            self.deques.remove(dq)
        except ValueError:
            pass

    def muggable_count(self) -> int:
        """``d_i^m(t)``: deques awaiting a mugger."""
        return sum(1 for d in self.deques if d.muggable)


@dataclass(slots=True)
class Worker:
    """One simulated processor (a Cilk "worker").

    ``slots=True``: the runtime reads ``current`` / ``blocked_until`` /
    ``flag_target`` on every worker-step, and slot access skips the
    instance-dict lookup.
    """

    wid: int
    job: JobRun | None = None
    dq: WsDeque | None = None
    current: NodeRef | None = None
    #: DREP preemption flag: the job this worker must switch to, set by the
    #: master on an arrival (Sec. V-B) and honored per the configured
    #: check granularity.  Write through ``WsRuntime.arm_flag`` (or the
    #: ``WsScheduler.arm_flag`` helper) so the event-horizon kernel's
    #: armed-flag count stays accurate; a direct write is safe but loses
    #: the kernel's fast bulk-jump veto.
    flag_target: JobRun | None = None
    failed_steals: int = 0
    #: first step at which the worker may act again after paying
    #: preemption overhead (0 = never blocked); an attribute rather than a
    #: ``scratch`` entry because the runtime reads it every worker-step
    blocked_until: int = 0
    #: crashed by a fault plan (repro.faults): excluded from the runtime's
    #: live-worker list until its recover event fires
    down: bool = False
    #: free-form scheduler scratch (e.g. steal-first's admission budget)
    scratch: dict = field(default_factory=dict)

    @property
    def out_of_work(self) -> bool:
        """No executing node and nothing in the worker's own deque."""
        return self.current is None and (self.dq is None or not self.dq.nodes)

    def describe(self) -> str:  # pragma: no cover - debugging aid
        job = self.job.job_id if self.job else None
        cur = self.current[1] if self.current else None
        dq = len(self.dq) if self.dq is not None else None
        return f"W{self.wid}(job={job}, node={cur}, deque={dq})"
