"""Tests for baseline persistence and drift detection."""

from __future__ import annotations

import pytest

from repro.analysis.baselines import (
    BaselineMismatch,
    compare_to_baseline,
    save_baseline,
)


@pytest.fixture
def baseline(tmp_path):
    path = tmp_path / "baseline.json"
    save_baseline(
        path,
        {
            "fig1a": {"mean_flow": 2.5, "preemptions": 100},
            "fig3a": {"mean_flow": 90.0},
        },
    )
    return path


class TestCompare:
    def test_exact_match_passes(self, baseline):
        compared = compare_to_baseline(
            baseline, {"fig1a": {"mean_flow": 2.5, "preemptions": 100}}
        )
        assert set(compared) == {"fig1a.mean_flow", "fig1a.preemptions"}

    def test_drift_detected(self, baseline):
        with pytest.raises(BaselineMismatch, match="fig1a.mean_flow"):
            compare_to_baseline(baseline, {"fig1a": {"mean_flow": 2.6}})

    def test_tolerance_band(self, baseline):
        compare_to_baseline(
            baseline, {"fig1a": {"mean_flow": 2.55}}, rel_tol=0.03
        )
        with pytest.raises(BaselineMismatch):
            compare_to_baseline(
                baseline, {"fig1a": {"mean_flow": 2.6}}, rel_tol=0.03
            )

    def test_per_metric_tolerance(self, baseline):
        compare_to_baseline(
            baseline,
            {"fig1a": {"mean_flow": 2.5, "preemptions": 104}},
            per_metric_tol={"preemptions": 0.05},
        )

    def test_unknown_run(self, baseline):
        with pytest.raises(KeyError, match="fig9"):
            compare_to_baseline(baseline, {"fig9": {"x": 1.0}})

    def test_unknown_metric(self, baseline):
        with pytest.raises(KeyError, match="nope"):
            compare_to_baseline(baseline, {"fig1a": {"nope": 1.0}})

    def test_all_failures_listed(self, baseline):
        with pytest.raises(BaselineMismatch) as exc:
            compare_to_baseline(
                baseline,
                {"fig1a": {"mean_flow": 3.0, "preemptions": 200}},
            )
        assert "mean_flow" in str(exc.value) and "preemptions" in str(exc.value)


class TestLiveBaseline:
    def test_deterministic_run_baselines_exactly(self, tmp_path):
        """Seeded runs must snapshot/compare exactly — the CI guard."""
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import DrepSequential
        from repro.workloads.traces import generate_trace

        trace = generate_trace(300, "finance", 0.6, 2, seed=55)

        def measure():
            r = simulate(trace, 2, DrepSequential(), seed=55)
            return {
                "drep": {
                    "mean_flow": r.mean_flow,
                    "preemptions": float(r.preemptions),
                }
            }

        path = tmp_path / "live.json"
        save_baseline(path, measure())
        compare_to_baseline(path, measure())  # exact, rel_tol=0
