"""Tests for SVG line charts."""

from __future__ import annotations

from xml.etree import ElementTree

import pytest

from repro.analysis.charts import figure_svg_from_rows, line_chart_svg, save_figure_svg

ROWS = [
    {"m": 1, "scheduler": "SRPT", "mean_flow": 1.5},
    {"m": 4, "scheduler": "SRPT", "mean_flow": 1.2},
    {"m": 1, "scheduler": "DREP", "mean_flow": 4.0},
    {"m": 4, "scheduler": "DREP", "mean_flow": 1.4},
]


class TestLineChart:
    def test_empty(self):
        assert line_chart_svg({}).startswith("<svg")

    def test_well_formed_with_series(self):
        svg = line_chart_svg(
            {"A": ([1, 2, 4], [3.0, 2.0, 1.0]), "B": ([1, 2, 4], [1.0, 1.1, 1.2])},
            title="t",
            x_label="m",
            y_label="flow",
        )
        root = ElementTree.fromstring(svg)
        paths = [e for e in root.iter() if e.tag.endswith("path")]
        circles = [e for e in root.iter() if e.tag.endswith("circle")]
        assert len(paths) == 2
        assert len(circles) == 6
        assert "t" in svg and "flow" in svg

    def test_log_scale_validation(self):
        with pytest.raises(ValueError):
            line_chart_svg({"A": ([0, 1], [1, 2])}, log_x=True)
        with pytest.raises(ValueError):
            line_chart_svg({"A": ([1, 2], [0, 2])}, log_y=True)

    def test_log_scale_renders(self):
        svg = line_chart_svg({"A": ([1, 10, 100], [1.0, 10.0, 100.0])}, log_x=True, log_y=True)
        ElementTree.fromstring(svg)

    def test_single_point_series(self):
        svg = line_chart_svg({"A": ([2], [5.0])})
        ElementTree.fromstring(svg)


class TestFigureFromRows:
    def test_series_split(self):
        svg = figure_svg_from_rows(ROWS, x="m", title="Figure 1")
        assert "SRPT" in svg and "DREP" in svg and "Figure 1" in svg
        ElementTree.fromstring(svg)

    def test_save(self, tmp_path):
        svg = figure_svg_from_rows(ROWS, x="m")
        p = save_figure_svg(tmp_path / "figs" / "fig1.svg", svg)
        assert p.exists()
        assert p.read_text().startswith("<svg")
