"""Config plumbing tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_ws_point, run_ws_sweep, ws_scheduler_factories
from repro.wsim.runtime import WsConfig
from repro.wsim.schedulers import DrepWS


class TestWsConfigForwarding:
    def test_preempt_check_forwarded(self):
        """The WsConfig handed to run_ws_point must reach the runtime:
        'step' mode produces at least as many preemptions as 'steal'."""
        counts = {}
        for mode in ("steal", "step"):
            rows = run_ws_point(
                "finance",
                0.7,
                4,
                {"DREP": DrepWS},
                n_jobs=80,
                mean_work_units=200,
                seed=5,
                config=WsConfig(preempt_check=mode),
            )
            counts[mode] = rows[0]["preemptions"]
        assert counts["step"] >= counts["steal"]

    def test_overhead_forwarded(self):
        flows = {}
        for overhead in (0, 40):
            rows = run_ws_point(
                "finance",
                0.7,
                2,
                {"DREP": DrepWS},
                n_jobs=60,
                mean_work_units=200,
                seed=6,
                config=WsConfig(preemption_overhead=overhead),
            )
            flows[overhead] = rows[0]["mean_flow"]
        assert flows[40] >= flows[0]

    def test_parallelism_default_is_2m(self):
        rows = run_ws_point(
            "finance", 0.5, 3, {"DREP": DrepWS}, n_jobs=10, mean_work_units=100, seed=7
        )
        assert rows  # smoke: default parallelism path exercised

    def test_sweep_uses_same_schedulers_per_load(self):
        rows = run_ws_sweep(
            "finance", [0.5, 0.6], 2, n_jobs=12, mean_work_units=100, seed=8
        )
        per_load = {}
        for r in rows:
            per_load.setdefault(r["load"], set()).add(r["scheduler"])
        assert per_load[0.5] == per_load[0.6] == set(ws_scheduler_factories())

    def test_rows_carry_practicality_counters(self):
        rows = run_ws_point(
            "finance", 0.5, 2, ws_scheduler_factories(), n_jobs=15, mean_work_units=100, seed=9
        )
        for r in rows:
            assert {"steal_attempts", "muggings", "preemptions", "switches"} <= set(r)

    def test_invalid_mean_work_guard(self):
        with pytest.raises(ValueError):
            run_ws_point(
                "finance", 0.5, 2, {"DREP": DrepWS}, n_jobs=5, mean_work_units=0, seed=1
            )
