"""Tests for repro.analysis.experiments — the sweep harness."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    flow_policy_factories,
    run_flow_point,
    run_flow_sweep,
    run_ws_point,
    run_ws_sweep,
    scale_trace,
    ws_scheduler_factories,
)
from repro.core.job import ParallelismMode
from tests.conftest import make_trace


class TestFactories:
    def test_sequential_series_matches_fig1(self):
        names = set(flow_policy_factories(ParallelismMode.SEQUENTIAL))
        assert names == {"SRPT", "SJF", "RR", "DREP"}

    def test_parallel_series_matches_fig2(self):
        names = set(flow_policy_factories(ParallelismMode.FULLY_PARALLEL))
        assert names == {"SRPT", "SWF", "RR", "DREP"}

    def test_ws_series_matches_fig3(self):
        names = set(ws_scheduler_factories())
        assert names == {"DREP", "SWF", "steal-first", "admit-first"}

    def test_factories_return_fresh_instances(self):
        f = flow_policy_factories(ParallelismMode.SEQUENTIAL)["DREP"]
        assert f() is not f()


class TestScaleTrace:
    def test_scales_all_fields(self):
        t = make_trace([2.0, 4.0], releases=[1.0, 2.0])
        s = scale_trace(t, 10.0)
        assert s.jobs[0].work == 20.0
        assert s.jobs[1].release == 20.0
        assert s.jobs[1].span == 40.0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_trace(make_trace([1.0]), 0.0)


class TestFlowSweep:
    def test_point_rows(self):
        rows = run_flow_point(
            "finance",
            0.5,
            2,
            ParallelismMode.SEQUENTIAL,
            flow_policy_factories(ParallelismMode.SEQUENTIAL),
            n_jobs=100,
            seed=1,
        )
        assert len(rows) == 4
        assert {r["scheduler"] for r in rows} == {"SRPT", "SJF", "RR", "DREP"}
        for r in rows:
            assert r["mean_flow"] > 0
            assert r["m"] == 2

    def test_sweep_covers_all_m(self):
        rows = run_flow_sweep(
            "finance", 0.5, ParallelismMode.SEQUENTIAL, [1, 2], n_jobs=60, seed=1
        )
        assert {r["m"] for r in rows} == {1, 2}
        assert len(rows) == 8

    def test_same_trace_for_all_policies(self):
        """All policies in a cell must see the identical trace: SRPT beats
        or ties everyone on the shared instance."""
        rows = run_flow_point(
            "finance",
            0.6,
            1,
            ParallelismMode.SEQUENTIAL,
            flow_policy_factories(ParallelismMode.SEQUENTIAL),
            n_jobs=200,
            seed=2,
        )
        flows = {r["scheduler"]: r["mean_flow"] for r in rows}
        assert flows["SRPT"] == min(flows.values())


class TestWsSweep:
    def test_point_rows(self):
        rows = run_ws_point(
            "finance",
            0.5,
            2,
            ws_scheduler_factories(),
            n_jobs=20,
            mean_work_units=120,
            seed=3,
        )
        assert len(rows) == 4
        for r in rows:
            assert r["mean_flow"] >= 1
            assert r["utilization"] > 0

    def test_sweep_covers_loads(self):
        rows = run_ws_sweep(
            "finance", [0.5, 0.7], 2, n_jobs=15, mean_work_units=100, seed=4
        )
        assert {r["load"] for r in rows} == {0.5, 0.7}

    def test_flow_grows_with_load(self):
        rows = run_ws_sweep(
            "finance", [0.4, 0.8], 2, n_jobs=60, mean_work_units=150, seed=5
        )
        by = {(r["load"], r["scheduler"]): r["mean_flow"] for r in rows}
        # within each scheduler, higher load means higher (or equal) flow
        for name in ws_scheduler_factories():
            assert by[(0.8, name)] > by[(0.4, name)] * 0.8
