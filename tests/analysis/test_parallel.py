"""Tests for process-parallel sweep execution."""

from __future__ import annotations

import pytest

from repro.analysis import parallel as par_mod
from repro.analysis.parallel import (
    FlowCell,
    _memoized_trace,
    parallel_flow_sweep,
    run_cells,
)


def cell(**kw):
    defaults = dict(
        policy="srpt",
        distribution="finance",
        load=0.5,
        m=2,
        n_jobs=120,
        seed=3,
    )
    defaults.update(kw)
    return FlowCell(**defaults)


class TestFlowCell:
    def test_runs_inline(self):
        row = cell().run()
        assert row["mean_flow"] > 0
        assert row["policy"] == "SRPT"

    def test_policy_kwargs(self):
        row = cell(policy="laps", policy_kwargs=(("beta", 0.25),)).run()
        assert "LAPS(0.25)" == row["policy"]

    def test_picklable(self):
        import pickle

        c = cell()
        assert pickle.loads(pickle.dumps(c)) == c


class TestRunCells:
    def test_empty(self):
        assert run_cells([]) == []

    def test_single_cell_inline(self):
        rows = run_cells([cell()])
        assert len(rows) == 1

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            run_cells([cell()], workers=0)

    def test_parallel_matches_serial(self):
        cells = [cell(m=m, policy=p) for m in (1, 2) for p in ("srpt", "rr")]
        serial = run_cells(cells, workers=1)
        parallel = run_cells(cells, workers=2)
        strip = lambda rows: [{k: v for k, v in r.items() if k != "pid"} for r in rows]
        assert strip(serial) == strip(parallel)

    def test_parallel_actually_uses_processes(self):
        cells = [cell(seed=s, n_jobs=400) for s in range(4)]
        rows = run_cells(cells, workers=4)
        pids = {r["pid"] for r in rows}
        assert len(pids) >= 2  # at least two distinct worker processes

    def test_submission_order_preserved(self):
        cells = [cell(m=m) for m in (4, 1, 2)]
        rows = run_cells(cells, workers=3)
        assert [r["m"] for r in rows] == [4, 1, 2]


class TestTraceMemo:
    def setup_method(self):
        par_mod._TRACE_MEMO.clear()

    def test_hit_returns_same_object(self):
        key = ("finance", 0.5, 2, 80, "sequential", 11)
        t1 = _memoized_trace(*key)
        t2 = _memoized_trace(*key)
        assert t1 is t2
        assert len(par_mod._TRACE_MEMO) == 1

    def test_distinct_keys_distinct_traces(self):
        t1 = _memoized_trace("finance", 0.5, 2, 80, "sequential", 11)
        t2 = _memoized_trace("finance", 0.5, 2, 80, "sequential", 12)
        assert t1 is not t2
        assert len(par_mod._TRACE_MEMO) == 2

    def test_memo_matches_direct_generation(self):
        from repro.core.job import ParallelismMode
        from repro.workloads.traces import generate_trace

        memo = _memoized_trace("finance", 0.6, 2, 60, "sequential", 7)
        direct = generate_trace(
            n_jobs=60,
            distribution="finance",
            load=0.6,
            m=2,
            mode=ParallelismMode("sequential"),
            seed=7,
        )
        assert [s.work for s in memo.jobs] == [s.work for s in direct.jobs]
        assert [s.release for s in memo.jobs] == [
            s.release for s in direct.jobs
        ]

    def test_fifo_eviction_bounds_size(self, monkeypatch):
        monkeypatch.setattr(par_mod, "_TRACE_MEMO_MAX", 3)
        for seed in range(5):
            _memoized_trace("finance", 0.5, 1, 30, "sequential", seed)
        assert len(par_mod._TRACE_MEMO) == 3
        # oldest entries were evicted first
        seeds = [key[5] for key in par_mod._TRACE_MEMO]
        assert seeds == [2, 3, 4]

    def test_cells_sharing_params_reuse_trace(self):
        rows = run_cells(
            [cell(policy="srpt"), cell(policy="rr")], workers=1
        )
        assert len(par_mod._TRACE_MEMO) == 1
        assert rows[0]["mean_flow"] > 0


class TestSweep:
    def test_sweep_shape(self):
        rows = parallel_flow_sweep(
            policies=["srpt", "drep"],
            distribution="finance",
            load=0.6,
            m_values=[1, 2],
            n_jobs=100,
            seed=5,
            workers=2,
        )
        assert len(rows) == 4
        assert {r["policy"] for r in rows} == {"SRPT", "DREP"}
        # same trace per (m): SRPT <= DREP within each m
        by = {(r["m"], r["policy"]): r["mean_flow"] for r in rows}
        for m in (1, 2):
            assert by[(m, "SRPT")] <= by[(m, "DREP")] * (1 + 1e-9)
