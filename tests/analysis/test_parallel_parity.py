"""Parity: the parallel sweep must reproduce the serial harness exactly."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_flow_point
from repro.analysis.parallel import FlowCell
from repro.core.job import ParallelismMode
from repro.flowsim.policies import DrepSequential, RoundRobin, SRPT


class TestParity:
    @pytest.mark.parametrize("pol_name,factory", [
        ("srpt", SRPT),
        ("rr", RoundRobin),
        ("drep", DrepSequential),
    ])
    def test_cell_matches_harness(self, pol_name, factory):
        rows = run_flow_point(
            "finance",
            0.6,
            2,
            ParallelismMode.SEQUENTIAL,
            {"X": factory},
            n_jobs=150,
            seed=31,
        )
        harness_flow = rows[0]["mean_flow"]
        cell_flow = FlowCell(
            policy=pol_name,
            distribution="finance",
            load=0.6,
            m=2,
            n_jobs=150,
            seed=31,
        ).run()["mean_flow"]
        assert cell_flow == pytest.approx(harness_flow, rel=1e-12)

    def test_mode_plumbs_through(self):
        cell = FlowCell(
            policy="srpt",
            distribution="finance",
            load=0.6,
            m=2,
            n_jobs=80,
            mode="fully_parallel",
            seed=32,
        )
        row = cell.run()
        assert row["mode"] == "fully_parallel"
        # fully parallel at m=2 ~ single resource: flows differ from the
        # sequential-mode cell on the same parameters
        seq = FlowCell(
            policy="srpt",
            distribution="finance",
            load=0.6,
            m=2,
            n_jobs=80,
            seed=32,
        ).run()
        assert row["mean_flow"] != seq["mean_flow"]

    def test_speed_plumbs_through(self):
        slow = FlowCell(
            policy="srpt", distribution="finance", load=0.6, m=2, n_jobs=80, seed=33
        ).run()
        fast = FlowCell(
            policy="srpt",
            distribution="finance",
            load=0.6,
            m=2,
            n_jobs=80,
            seed=33,
            speed=2.0,
        ).run()
        assert fast["mean_flow"] < slow["mean_flow"]
