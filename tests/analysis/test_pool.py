"""Tests for the deterministic grid runner (`repro.analysis.pool`).

The headline contract: for any worker count and chunk size, `run_grid`
returns exactly `[fn(t) for t in tasks]` — same rows, same order, same
bytes.  Everything else (counters, seed derivation, serial-sweep parity)
hangs off that.
"""

from __future__ import annotations

import pytest

from repro.analysis.pool import (
    FlowSweepCell,
    default_chunk_size,
    flow_sweep_cells,
    replicate_flow,
    run_flow_grid,
    run_grid,
)
from repro.core.rng import derive_seed
from repro.perf.counters import PerfCounters


def _square(x: int) -> int:
    return x * x


class TestRunGrid:
    def test_serial_is_plain_map(self):
        assert run_grid(_square, range(7)) == [x * x for x in range(7)]

    def test_empty(self):
        assert run_grid(_square, [], workers=4) == []

    def test_pooled_equals_serial(self):
        tasks = list(range(23))
        serial = run_grid(_square, tasks, workers=1)
        assert run_grid(_square, tasks, workers=3) == serial
        assert run_grid(_square, tasks, workers=3, chunk_size=1) == serial
        assert run_grid(_square, tasks, workers=2, chunk_size=100) == serial

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            run_grid(_square, [1], workers=0)

    def test_counters(self):
        c = PerfCounters()
        run_grid(_square, range(10), workers=2, chunk_size=3, counters=c)
        assert c.pool_tasks == 10
        assert c.pool_chunks == 4  # ceil(10 / 3)
        assert c.pool_workers == 2

    def test_workers_capped_by_tasks(self):
        c = PerfCounters()
        run_grid(_square, [1, 2], workers=16, counters=c)
        assert c.pool_workers == 2

    def test_default_chunk_size(self):
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(1, 8) == 1


class TestFlowGrid:
    def test_workers_1_equals_workers_4(self):
        cells = flow_sweep_cells(
            "finance", 0.7, "sequential", [2, 4], 80, seed=5, replicates=2
        )
        serial = run_flow_grid(cells, workers=1)
        pooled = run_flow_grid(cells, workers=4)
        assert serial == pooled

    def test_rows_match_serial_sweep(self):
        """Replicate 0 of the grid == run_flow_sweep, field for field."""
        from repro.analysis.experiments import flow_policy_factories, run_flow_sweep
        from repro.core.job import ParallelismMode

        mode = ParallelismMode.SEQUENTIAL
        grid_rows = run_flow_grid(
            flow_sweep_cells("finance", 0.6, mode, [2, 4], 100, seed=3)
        )
        sweep_rows = run_flow_sweep(
            "finance", 0.6, mode, [2, 4], 100, seed=3,
            policies=flow_policy_factories(mode),
        )
        assert len(grid_rows) == len(sweep_rows)
        for g, s in zip(grid_rows, sweep_rows):
            for key in s:
                if key == "figure":
                    continue
                assert g[key] == s[key], key

    def test_rows_have_no_process_dependent_fields(self):
        row = run_flow_grid(
            [FlowSweepCell("finance", 0.5, 2, "sequential", "srpt", 40, 0)]
        )[0]
        assert "pid" not in row
        assert set(row) == {
            "figure", "distribution", "load", "m", "mode", "scheduler",
            "mean_flow", "p99_flow", "preemptions", "switches",
            "utilization", "seed", "events",
        }

    def test_replicate_seeds_derived(self):
        cells = flow_sweep_cells(
            "finance", 0.5, "sequential", [2], 40, seed=9,
            policies=("srpt",), replicates=3,
        )
        assert [c.seed for c in cells] == [
            9, derive_seed(9, "rep/1"), derive_seed(9, "rep/2")
        ]

    def test_parallel_mode_default_policies(self):
        cells = flow_sweep_cells("bing", 0.5, "fully_parallel", [2], 40)
        assert [c.policy for c in cells] == ["srpt", "swf", "rr", "drep-par"]

    def test_rejects_bad_replicates(self):
        with pytest.raises(ValueError):
            flow_sweep_cells("finance", 0.5, "sequential", [2], 40, replicates=0)


class TestReplicateFlow:
    def test_pooled_equals_serial(self):
        kwargs = dict(
            policy="srpt", distribution="finance", load=0.6, m=2,
            n_jobs=60, seeds=(0, 1, 2),
        )
        serial = replicate_flow(workers=1, **kwargs)
        pooled = replicate_flow(workers=2, **kwargs)
        assert serial.values == pooled.values
        assert serial.label == "SRPT"

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            replicate_flow("srpt", "finance", 0.6, 2, 60, seeds=())
