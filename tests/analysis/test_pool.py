"""Tests for the deterministic grid runner (`repro.analysis.pool`).

The headline contract: for any worker count and chunk size, `run_grid`
returns exactly `[fn(t) for t in tasks]` — same rows, same order, same
bytes.  Everything else (counters, seed derivation, serial-sweep parity)
hangs off that.
"""

from __future__ import annotations

import pytest

from repro.analysis.pool import (
    FlowSweepCell,
    default_chunk_size,
    flow_sweep_cells,
    replicate_flow,
    run_flow_grid,
    run_grid,
)
from repro.core.rng import derive_seed
from repro.perf.counters import PerfCounters


def _square(x: int) -> int:
    return x * x


class TestRunGrid:
    def test_serial_is_plain_map(self):
        assert run_grid(_square, range(7)) == [x * x for x in range(7)]

    def test_empty(self):
        assert run_grid(_square, [], workers=4) == []

    def test_pooled_equals_serial(self):
        tasks = list(range(23))
        serial = run_grid(_square, tasks, workers=1)
        assert run_grid(_square, tasks, workers=3) == serial
        assert run_grid(_square, tasks, workers=3, chunk_size=1) == serial
        assert run_grid(_square, tasks, workers=2, chunk_size=100) == serial

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            run_grid(_square, [1], workers=0)

    def test_counters(self):
        c = PerfCounters()
        run_grid(_square, range(10), workers=2, chunk_size=3, counters=c)
        assert c.pool_tasks == 10
        assert c.pool_chunks == 4  # ceil(10 / 3)
        assert c.pool_workers == 2

    def test_workers_capped_by_tasks(self):
        c = PerfCounters()
        run_grid(_square, [1, 2], workers=16, counters=c)
        assert c.pool_workers == 2

    def test_default_chunk_size(self):
        assert default_chunk_size(100, 4) == 7  # ceil(100 / 16)
        assert default_chunk_size(1, 8) == 1

    def test_default_chunk_size_degenerate_shapes(self):
        # more workers than tasks, zero tasks, zero workers: always >= 1
        assert default_chunk_size(2, 16) == 1
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(10, 0) == 3  # workers clamped to 1

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            run_grid(_square, [1, 2, 3], workers=2, chunk_size=0)
        with pytest.raises(ValueError):
            run_grid(_square, [1, 2, 3], workers=2, chunk_size=-4)

    def test_empty_tasks_skip_pool_and_counters(self):
        c = PerfCounters()
        assert run_grid(_square, [], workers=8, counters=c) == []
        assert c.as_dict() == {}

    def test_single_task_many_workers_runs_inline(self):
        c = PerfCounters()
        assert run_grid(_square, [6], workers=32, counters=c) == [36]
        assert c.pool_workers == 1  # clamped: no pool for one task
        assert c.pool_chunks == 1


class TestFlowGrid:
    def test_workers_1_equals_workers_4(self):
        cells = flow_sweep_cells(
            "finance", 0.7, "sequential", [2, 4], 80, seed=5, replicates=2
        )
        serial = run_flow_grid(cells, workers=1)
        pooled = run_flow_grid(cells, workers=4)
        assert serial == pooled

    def test_rows_match_serial_sweep(self):
        """Replicate 0 of the grid == run_flow_sweep, field for field."""
        from repro.analysis.experiments import flow_policy_factories, run_flow_sweep
        from repro.core.job import ParallelismMode

        mode = ParallelismMode.SEQUENTIAL
        grid_rows = run_flow_grid(
            flow_sweep_cells("finance", 0.6, mode, [2, 4], 100, seed=3)
        )
        sweep_rows = run_flow_sweep(
            "finance", 0.6, mode, [2, 4], 100, seed=3,
            policies=flow_policy_factories(mode),
        )
        assert len(grid_rows) == len(sweep_rows)
        for g, s in zip(grid_rows, sweep_rows):
            for key in s:
                if key == "figure":
                    continue
                assert g[key] == s[key], key

    def test_rows_have_no_process_dependent_fields(self):
        row = run_flow_grid(
            [FlowSweepCell("finance", 0.5, 2, "sequential", "srpt", 40, 0)]
        )[0]
        assert "pid" not in row
        assert set(row) == {
            "figure", "distribution", "load", "m", "mode", "scheduler",
            "mean_flow", "p99_flow", "preemptions", "switches",
            "utilization", "seed", "events",
        }

    def test_replicate_seeds_derived(self):
        cells = flow_sweep_cells(
            "finance", 0.5, "sequential", [2], 40, seed=9,
            policies=("srpt",), replicates=3,
        )
        assert [c.seed for c in cells] == [
            9, derive_seed(9, "rep/1"), derive_seed(9, "rep/2")
        ]

    def test_parallel_mode_default_policies(self):
        cells = flow_sweep_cells("bing", 0.5, "fully_parallel", [2], 40)
        assert [c.policy for c in cells] == ["srpt", "swf", "rr", "drep-par"]

    def test_rejects_bad_replicates(self):
        with pytest.raises(ValueError):
            flow_sweep_cells("finance", 0.5, "sequential", [2], 40, replicates=0)


def _probe_shared(key: tuple) -> tuple:
    """Worker-side probe: materialize the trace, report shm hit count.

    Clears the (fork-inherited) per-process memo first so the lookup
    must go through shared memory, as it would under a spawn start
    method where workers begin with an empty memo.
    """
    from repro.analysis import parallel, shm
    from repro.analysis.parallel import memoized_trace

    parallel._TRACE_MEMO.clear()
    trace = memoized_trace(*key)
    return (
        shm.shared_stats()["hits"],
        len(trace.jobs),
        trace.jobs[0].release,
        trace.jobs[-1].work,
    )


class TestSharedMemoryShipping:
    """Zero-copy trace dispatch (`repro.analysis.shm`)."""

    KEY = ("finance", 0.7, 4, 120, "sequential", 21)

    def test_pack_roundtrip_is_exact(self):
        from repro.analysis import shm
        from repro.analysis.parallel import memoized_trace

        trace = memoized_trace(*self.KEY)
        manifest, ship = shm.pack_flow_traces({self.KEY: trace})
        try:
            shm.install_manifest(manifest)
            rec = shm.shared_trace(self.KEY)
            assert rec is not None
            assert rec.jobs == trace.jobs  # JobSpec equality: all fields
            assert (rec.m, rec.load, rec.distribution, rec.name) == (
                trace.m, trace.load, trace.distribution, trace.name
            )
        finally:
            shm.install_manifest(None)
            ship.close_and_unlink()

    def test_lookup_misses_fall_back(self):
        from repro.analysis import shm
        from repro.analysis.parallel import memoized_trace

        assert shm.shared_trace(self.KEY) is None  # no manifest installed
        trace = memoized_trace(*self.KEY)
        manifest, ship = shm.pack_flow_traces({self.KEY: trace})
        try:
            shm.install_manifest(manifest)
            other = ("finance", 0.7, 4, 120, "sequential", 99)
            assert shm.shared_trace(other) is None  # key not shipped
        finally:
            shm.install_manifest(None)
            ship.close_and_unlink()

    def test_dag_traces_are_not_packable(self):
        from repro.analysis import shm
        from repro.workloads.traces import attach_dags, generate_trace

        base = generate_trace(
            n_jobs=12, distribution="finance", load=0.5, m=4, seed=1
        )
        dag_trace = attach_dags(base, parallelism=4, seed=1)
        with pytest.raises(shm.ShmUnavailable):
            shm.pack_flow_traces({("k",): dag_trace})

    def test_workers_see_shared_traces(self):
        """Every worker's first lookup is served from shared memory."""
        from repro.analysis import shm
        from repro.analysis.parallel import memoized_trace

        trace = memoized_trace(*self.KEY)
        manifest, ship = shm.pack_flow_traces({self.KEY: trace})
        try:
            rows = run_grid(
                _probe_shared,
                [self.KEY] * 4,
                workers=2,
                chunk_size=1,
                initializer=shm.install_manifest,
                initargs=(manifest,),
            )
        finally:
            ship.close_and_unlink()
        for hits, n_jobs, first_release, last_work in rows:
            assert hits >= 1
            assert n_jobs == len(trace.jobs)
            assert first_release == trace.jobs[0].release
            assert last_work == trace.jobs[-1].work

    def test_flow_grid_counts_shipment(self):
        cells = flow_sweep_cells(
            "finance", 0.6, "sequential", [2, 4], 60, seed=7,
            policies=("srpt", "drep"),
        )
        c = PerfCounters()
        pooled = run_flow_grid(cells, workers=4, counters=c)
        assert c.pool_shm_traces == 2  # one distinct trace per m value
        assert c.pool_shm_bytes > 0
        serial = run_flow_grid(cells, workers=1)
        assert pooled == serial

    def test_flow_grid_survives_shm_unavailable(self, monkeypatch):
        from repro.analysis import shm

        def _unavailable(keyed):
            raise shm.ShmUnavailable("forced by test")

        monkeypatch.setattr(shm, "pack_flow_traces", _unavailable)
        cells = flow_sweep_cells(
            "finance", 0.6, "sequential", [2], 60, seed=7, policies=("srpt",),
            replicates=2,
        )
        c = PerfCounters()
        pooled = run_flow_grid(cells, workers=2, counters=c)
        assert c.pool_shm_traces == 0  # fell back to memo regeneration
        assert pooled == run_flow_grid(cells, workers=1)


class TestReplicateFlow:
    def test_pooled_equals_serial(self):
        kwargs = dict(
            policy="srpt", distribution="finance", load=0.6, m=2,
            n_jobs=60, seeds=(0, 1, 2),
        )
        serial = replicate_flow(workers=1, **kwargs)
        pooled = replicate_flow(workers=2, **kwargs)
        assert serial.values == pooled.values
        assert serial.label == "SRPT"

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            replicate_flow("srpt", "finance", 0.6, 2, 60, seeds=())
