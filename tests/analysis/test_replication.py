"""Tests for multi-seed replication utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.replication import Replication, replicate, significantly_less
from repro.core.metrics import ScheduleResult
from repro.flowsim.engine import simulate
from repro.flowsim.policies import DrepSequential, SRPT
from repro.workloads.traces import generate_trace


class TestReplication:
    def test_summary_statistics(self):
        r = Replication("x", (1.0, 2.0, 3.0))
        assert r.mean == pytest.approx(2.0)
        assert r.std == pytest.approx(1.0)
        lo, hi = r.ci95()
        assert lo < 2.0 < hi

    def test_single_value(self):
        r = Replication("x", (5.0,))
        assert r.stderr == 0.0
        assert r.ci95() == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Replication("x", ())

    def test_summary_keys(self):
        s = Replication("x", (1.0, 2.0)).summary()
        assert {"label", "n", "mean", "ci95_lo", "ci95_hi"} == set(s)


class TestReplicate:
    def test_runs_each_seed(self):
        seen = []

        def run(seed: int) -> ScheduleResult:
            seen.append(seed)
            return ScheduleResult("X", 1, np.array([float(seed)]))

        rep = replicate(run, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert rep.mean == pytest.approx(2.0)
        assert rep.label == "X"

    def test_custom_metric(self):
        def run(seed: int) -> ScheduleResult:
            return ScheduleResult("X", 1, np.array([1.0, 3.0]), preemptions=seed)

        rep = replicate(run, seeds=[2, 4], metric=lambda r: r.preemptions)
        assert rep.mean == pytest.approx(3.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: None, seeds=[])  # type: ignore[arg-type]


class TestSignificance:
    def test_clear_separation(self):
        a = Replication("a", (1.0, 1.1, 0.9, 1.0))
        b = Replication("b", (5.0, 5.1, 4.9, 5.0))
        assert significantly_less(a, b)
        assert not significantly_less(b, a)

    def test_overlapping_noise(self):
        a = Replication("a", (1.0, 3.0, 2.0))
        b = Replication("b", (1.5, 3.5, 2.5))
        assert not significantly_less(a, b)

    def test_zero_variance(self):
        a = Replication("a", (1.0,))
        b = Replication("b", (2.0,))
        assert significantly_less(a, b)

    def test_srpt_significantly_beats_drep(self):
        """End-to-end: the replicated comparison benches rely on."""
        trace = generate_trace(1200, "bing", 0.7, 2, seed=5)
        srpt = replicate(
            lambda s: simulate(trace, 2, SRPT(), seed=s), seeds=range(4)
        )
        drep = replicate(
            lambda s: simulate(trace, 2, DrepSequential(), seed=s), seeds=range(4)
        )
        assert significantly_less(srpt, drep)
