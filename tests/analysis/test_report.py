"""Tests for the reproduction report generator."""

from __future__ import annotations

import pytest

from repro.analysis.report import ReportConfig, build_report, write_report

TINY = ReportConfig(
    flow_jobs=60,
    ws_jobs=10,
    m_values=(1, 2),
    loads=(0.5,),
    ws_loads=(0.5,),
    ws_m=2,
    distributions=("finance",),
    seed=3,
)


class TestReportConfig:
    def test_defaults_valid(self):
        ReportConfig()

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            ReportConfig(flow_jobs=0)

    def test_invalid_sweeps(self):
        with pytest.raises(ValueError):
            ReportConfig(m_values=())


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(TINY)

    def test_has_all_sections(self, report):
        assert "# DREP reproduction report" in report
        assert "## Figure 1 (sequential jobs)" in report
        assert "## Figure 2 (fully parallel jobs)" in report
        assert "## Figure 3 (work-stealing runtime)" in report
        assert "## Theorem 1.2" in report

    def test_series_present(self, report):
        for name in ("SRPT", "RR", "DREP", "steal-first", "admit-first"):
            assert name in report

    def test_plots_rendered(self, report):
        assert "mean flow vs m" in report
        assert "A=" in report  # plot legend markers

    def test_budget_lines(self, report):
        assert "preempt/job" in report

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "sub" / "report.md", TINY)
        assert path.exists()
        assert path.read_text().startswith("# DREP reproduction report")
