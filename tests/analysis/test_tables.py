"""Tests for repro.analysis.tables."""

from __future__ import annotations

import json

from repro.analysis.tables import ascii_plot, format_table, pivot, save_rows, series_table


ROWS = [
    {"m": 1, "scheduler": "SRPT", "mean_flow": 1.5},
    {"m": 1, "scheduler": "DREP", "mean_flow": 3.0},
    {"m": 2, "scheduler": "SRPT", "mean_flow": 1.4},
    {"m": 2, "scheduler": "DREP", "mean_flow": 2.2},
]


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_columns_aligned(self):
        out = format_table(ROWS)
        lines = out.splitlines()
        assert len(lines) == 2 + len(ROWS)
        assert len({len(line.rstrip()) for line in lines[2:]}) >= 1

    def test_column_subset(self):
        out = format_table(ROWS, columns=["scheduler"])
        assert "mean_flow" not in out
        assert "SRPT" in out

    def test_float_format(self):
        out = format_table([{"x": 1.23456789}], floatfmt=".2f")
        assert "1.23" in out

    def test_missing_cells_blank(self):
        out = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert out  # no crash


class TestPivot:
    def test_shape(self):
        idx, cols, matrix = pivot(ROWS, "m", "scheduler", "mean_flow")
        assert idx == [1, 2]
        assert cols == ["SRPT", "DREP"]
        assert matrix == [[1.5, 3.0], [1.4, 2.2]]

    def test_missing_cells_none(self):
        rows = ROWS[:3]
        _, _, matrix = pivot(rows, "m", "scheduler", "mean_flow")
        assert matrix[1][1] is None


class TestSeriesTable:
    def test_figure_layout(self):
        out = series_table(ROWS, x="m", series="scheduler", value="mean_flow")
        lines = out.splitlines()
        assert lines[0].split()[:3] == ["m", "SRPT", "DREP"]
        assert len(lines) == 4  # header + sep + 2 x-values


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot({}) == "(empty plot)"

    def test_contains_markers_and_legend(self):
        out = ascii_plot(
            {"SRPT": ([1, 2, 4], [1.0, 1.1, 1.2]), "DREP": ([1, 2, 4], [3.0, 2.0, 1.5])},
            width=32,
            height=8,
            title="demo",
        )
        assert "demo" in out
        assert "A=SRPT" in out and "B=DREP" in out
        assert "A" in out.splitlines()[1:][0] or any(
            "A" in line for line in out.splitlines()
        )

    def test_single_point(self):
        out = ascii_plot({"x": ([1.0], [1.0])})
        assert "A=x" in out


class TestSaveRows:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "rows.json"
        save_rows(path, ROWS)
        back = json.loads(path.read_text())
        assert back == ROWS
