"""Tests for repro.analysis.timeline — recorder, rendering, occupancy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.timeline import TimelineRecorder, occupancy, render_timeline
from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsRuntime
from repro.wsim.schedulers import AdmitFirstWS, DrepWS


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestRecorder:
    def test_records_every_step(self):
        trace = dag_trace([chain(30, 1)])
        rec = TimelineRecorder()
        rt = WsRuntime(trace, 2, AdmitFirstWS(), seed=0)
        rt.run(observer=rec)
        assert len(rec.rows) >= 30
        assert rec.matrix.shape[1] == 2

    def test_stride_subsamples(self):
        trace = dag_trace([chain(40, 1)])
        full = TimelineRecorder()
        WsRuntime(trace, 2, AdmitFirstWS(), seed=0).run(observer=full)
        sub = TimelineRecorder(stride=4)
        WsRuntime(trace, 2, AdmitFirstWS(), seed=0).run(observer=sub)
        assert len(sub.rows) == pytest.approx(len(full.rows) / 4, abs=2)

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            TimelineRecorder(stride=0)

    def test_active_counts_recorded(self):
        trace = dag_trace([chain(20, 1), chain(20, 1)])
        rec = TimelineRecorder()
        WsRuntime(trace, 2, AdmitFirstWS(), seed=0).run(observer=rec)
        assert max(rec.active_counts) == 2


class TestRender:
    def test_empty(self):
        assert render_timeline(TimelineRecorder()) == "(no samples)"

    def test_rows_per_worker(self):
        trace = dag_trace([wide(4, 20)], m=3)
        rec = TimelineRecorder()
        WsRuntime(trace, 3, DrepWS(), seed=0).run(observer=rec)
        out = render_timeline(rec)
        lines = out.splitlines()
        assert lines[0].startswith("W0") and lines[2].startswith("W2")
        assert "steps" in lines[-1]

    def test_width_cap(self):
        trace = dag_trace([chain(500, 1)])
        rec = TimelineRecorder()
        WsRuntime(trace, 1, AdmitFirstWS(), seed=0).run(observer=rec)
        out = render_timeline(rec, max_width=40)
        assert all(len(line) <= 48 for line in out.splitlines()[:-1])


class TestSvg:
    def test_empty(self):
        from repro.analysis.timeline import render_timeline_svg

        out = render_timeline_svg(TimelineRecorder())
        assert out.startswith("<svg")

    def test_valid_svg_with_blocks(self):
        from xml.etree import ElementTree

        from repro.analysis.timeline import render_timeline_svg

        trace = dag_trace([wide(4, 30), wide(4, 30)], m=3)
        rec = TimelineRecorder()
        WsRuntime(trace, 3, DrepWS(), seed=2).run(observer=rec)
        out = render_timeline_svg(rec, title="demo")
        root = ElementTree.fromstring(out)  # well-formed XML
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) >= 3  # at least one block per worker
        assert "demo" in out

    def test_idle_blocks_grey(self):
        from repro.analysis.timeline import render_timeline_svg

        # global-pool scheduler: the second worker has nothing to steal
        # from a sequential chain, so it samples as idle
        trace = dag_trace([chain(10, 1)], m=2)
        rec = TimelineRecorder()
        WsRuntime(trace, 2, AdmitFirstWS(), seed=0).run(observer=rec)
        out = render_timeline_svg(rec)
        assert "#dddddd" in out


class TestOccupancy:
    def test_empty(self):
        assert occupancy(TimelineRecorder()) == {}

    def test_fractions_sum_to_one(self):
        trace = dag_trace([wide(8, 30), wide(8, 30)], m=4)
        rec = TimelineRecorder()
        WsRuntime(trace, 4, DrepWS(), seed=1).run(observer=rec)
        occ = occupancy(rec)
        assert sum(occ.values()) == pytest.approx(1.0)

    def test_equal_jobs_near_equal_shares_under_drep(self):
        """Equi-partition: identical concurrent jobs get similar worker
        shares under DREP (Lemma 4.1's observable consequence)."""
        dags = [wide(8, 60) for _ in range(3)]
        trace = dag_trace(dags, m=6)
        shares = np.zeros(3)
        for seed in range(8):
            rec = TimelineRecorder()
            WsRuntime(trace, 6, DrepWS(), seed=seed).run(observer=rec)
            occ = occupancy(rec)
            shares += np.array([occ.get(j, 0.0) for j in range(3)])
        shares /= shares.sum()
        assert shares.max() / shares.min() < 2.0
