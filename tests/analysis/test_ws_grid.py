"""Golden + determinism pinning for the work-stealing sweep grid.

``tests/data/golden_ws_grid.json`` freezes the full row set of a small
fig-3 style grid (policy × m × load × replicate).  Two guarantees ride
on it:

* the grid path reproduces the serial ``run_ws_sweep`` results (the
  golden was captured through ``run_ws_grid(cells, workers=1)``, which
  runs the cells inline);
* ``workers=N`` output is byte-identical to ``workers=1`` — the
  process-pool contract of :mod:`repro.analysis.pool` extended to the
  wsim engine.

Regenerate only for a deliberate semantic change
(``PYTHONPATH=src python tests/data/gen_goldens.py``), never to absorb
a perf regression.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis.experiments import run_ws_sweep
from repro.analysis.pool import run_ws_grid, ws_sweep_cells

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

_spec = importlib.util.spec_from_file_location(
    "gen_goldens", DATA_DIR / "gen_goldens.py"
)
gen_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_goldens)

GOLDEN = json.loads((DATA_DIR / "golden_ws_grid.json").read_text())


@pytest.fixture(scope="module")
def w1_rows():
    return run_ws_grid(gen_goldens.ws_grid_cells(), workers=1)


def test_w1_matches_golden(w1_rows):
    # json round-trips Python floats exactly, so == is a bit-level check
    assert w1_rows == GOLDEN


def test_w4_matches_w1(w1_rows):
    w4_rows = run_ws_grid(gen_goldens.ws_grid_cells(), workers=4)
    assert w4_rows == w1_rows


def test_grid_matches_serial_sweep():
    """Replicate 0 of the grid == the serial sweep, field for field."""
    serial = run_ws_sweep(
        "finance", [0.5, 0.7], 4, 40, mean_work_units=50, seed=11
    )
    cells = ws_sweep_cells(
        "finance", [0.5, 0.7], [4], 40, seed=11, mean_work_units=50
    )
    rows = run_ws_grid(cells, workers=1)
    # serial iterates load-outer/scheduler-inner; the grid iterates the
    # same way within one m, so order lines up directly
    for s, g in zip(serial, rows, strict=True):
        assert {k: v for k, v in g.items() if k in s} == s
        assert g["seed"] == 11
        assert g["events"] > 0
