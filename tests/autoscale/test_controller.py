"""Unit tests for the closed-loop capacity controller."""

from __future__ import annotations

import json

from repro.autoscale.controller import AutoscaleController
from repro.autoscale.guard import AutoscaleConfig


def cfg(**kw) -> AutoscaleConfig:
    base = dict(
        m_min=1,
        m_max=6,
        tick=1.0,
        up_watermark=10.0,
        down_watermark=2.0,
        cooldown_up=0.0,
        cooldown_down=0.0,
        horizon=0.0,
    )
    base.update(kw)
    return AutoscaleConfig(**base)


def drive(ctl: AutoscaleController, signals) -> list[int]:
    out = []
    for k, backlog in enumerate(signals):
        out.append(
            ctl.observe(
                float(k + 1),
                arrived_work=backlog,
                backlog_work=backlog,
                n_active=1,
            )
        )
    return out


BURST = [0.0, 0.0, 50.0, 80.0, 90.0, 90.0, 40.0, 10.0, 2.0, 0.0, 0.0, 0.0]


class TestDecisions:
    def test_tracks_a_burst_up_and_down(self):
        ctl = AutoscaleController(cfg(), seed=0)
        targets = drive(ctl, BURST)
        assert max(targets) > 1  # scaled up into the burst
        assert targets[-1] < max(targets)  # released capacity after
        assert all(1 <= m <= 6 for m in targets)
        summary = ctl.summary()
        assert summary["ticks"] == len(BURST)
        assert summary["scale_ups"] >= 1
        assert summary["scale_downs"] >= 1

    def test_signal_normalizes_by_current_m(self):
        ctl = AutoscaleController(cfg(), seed=0)
        ctl.bind(0.0, 4)
        # backlog 20 over m=4 → signal 5: inside the dead band, holds
        target = ctl.observe(1.0, arrived_work=0.0, backlog_work=20.0, n_active=4)
        assert target == 4
        assert ctl.decisions[-1]["reason"] == "hold"

    def test_capacity_integral_accrues_pre_decision(self):
        ctl = AutoscaleController(cfg(), seed=0)
        ctl.bind(0.0, 2)
        ctl.observe(10.0, arrived_work=999.0, backlog_work=999.0, n_active=2)
        # 10 time units at m=2, the scale-up applies *at* t=10
        assert ctl.capacity_seconds == 20.0
        assert ctl.m == 3
        ctl.finalize(15.0)
        assert ctl.capacity_seconds == 20.0 + 5 * 3

    def test_m_trace_records_changes_only(self):
        ctl = AutoscaleController(cfg(), seed=0)
        drive(ctl, [0.0, 0.0, 99.0, 99.0, 0.0])
        times = [t for t, _ in ctl.m_trace]
        assert times == sorted(times)
        ms = [m for _, m in ctl.m_trace]
        assert all(a != b for a, b in zip(ms, ms[1:]))


class TestDeterminism:
    def test_same_seed_byte_identical_trace(self):
        a = AutoscaleController(cfg(jitter=0.5), seed=7)
        b = AutoscaleController(cfg(jitter=0.5), seed=7)
        drive(a, BURST)
        drive(b, BURST)
        assert json.dumps(a.decisions) == json.dumps(b.decisions)
        assert json.dumps(a.m_trace) == json.dumps(b.m_trace)

    def test_name_scopes_the_jitter_stream(self):
        a = AutoscaleController(cfg(jitter=0.5), seed=7, name="x")
        b = AutoscaleController(cfg(jitter=0.5), seed=7, name="y")
        assert a.rng.random() != b.rng.random()


class TestStateDict:
    def test_round_trip_is_exact(self):
        ctl = AutoscaleController(cfg(jitter=0.3), seed=3)
        drive(ctl, BURST[:6])
        clone = AutoscaleController.from_state_dict(ctl.state_dict())
        assert json.dumps(clone.state_dict(), default=str) == json.dumps(
            ctl.state_dict(), default=str
        )

    def test_restored_controller_continues_identically(self):
        ctl = AutoscaleController(cfg(jitter=0.3, cooldown_up=2.0), seed=3)
        drive(ctl, BURST[:6])
        clone = AutoscaleController.from_state_dict(ctl.state_dict())
        rest = BURST[6:]
        a = [
            ctl.observe(7.0 + k, arrived_work=s, backlog_work=s, n_active=1)
            for k, s in enumerate(rest)
        ]
        b = [
            clone.observe(7.0 + k, arrived_work=s, backlog_work=s, n_active=1)
            for k, s in enumerate(rest)
        ]
        assert a == b
        assert json.dumps(clone.decisions) == json.dumps(ctl.decisions)
        assert clone.capacity_seconds == ctl.capacity_seconds
