"""Closed-loop elastic drivers: determinism and displaced-work accounting."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import ws_scheduler_factories
from repro.autoscale.guard import AutoscaleConfig
from repro.autoscale.loop import run_flowsim_elastic, run_wsim_elastic
from repro.core.job import ParallelismMode
from repro.flowsim.policies import policy_by_name
from repro.workloads.traces import attach_dags, generate_trace


def aconfig(**kw) -> AutoscaleConfig:
    base = dict(
        m_min=1,
        m_max=4,
        tick=5.0,
        up_watermark=15.0,
        down_watermark=4.0,
        cooldown_up=0.0,
        cooldown_down=0.0,
        requeue_delay=1.0,
    )
    base.update(kw)
    return AutoscaleConfig(**base)


@pytest.fixture(scope="module")
def flow_trace():
    return generate_trace(n_jobs=120, distribution="finance", load=0.7, m=4, seed=5)


@pytest.fixture(scope="module")
def ws_trace():
    base = generate_trace(
        n_jobs=30,
        distribution="finance",
        load=0.6,
        m=4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=9,
        scale_work_with_m=False,
    )
    from repro.analysis.experiments import scale_trace

    return attach_dags(scale_trace(base, 60.0), parallelism=8, seed=9)


class TestFlowsimElastic:
    def test_completes_all_jobs(self, flow_trace):
        row = run_flowsim_elastic(
            flow_trace, policy_by_name("drep"), aconfig(), seed=5
        )
        assert row["engine"] == "flowsim"
        assert row["mode"] == "elastic"
        assert row["mean_flow"] > 0
        assert row["ticks"] > 0

    def test_m_trace_respects_clamps(self, flow_trace):
        cfg = aconfig()
        row = run_flowsim_elastic(flow_trace, policy_by_name("drep"), cfg, seed=5)
        ms = [m for _, m in row["m_trace"]]
        assert all(cfg.m_min <= m <= cfg.m_max for m in ms)
        times = [t for t, _ in row["m_trace"]]
        assert times == sorted(times)

    def test_zero_unaccounted_displaced_work(self, flow_trace):
        row = run_flowsim_elastic(
            flow_trace, policy_by_name("drep"), aconfig(), seed=5
        )
        assert row["displaced_unaccounted"] == 0.0
        # every requeue-log entry names its redone work explicitly
        assert row["displaced_work"] == pytest.approx(
            sum(r["redone_work"] for r in row["requeue_log"])
        )
        assert row["requeues"] == len(row["requeue_log"])

    def test_no_displace_mode_never_displaces(self, flow_trace):
        row = run_flowsim_elastic(
            flow_trace, policy_by_name("drep"), aconfig(displace=False), seed=5
        )
        assert row["displaced_work"] == 0.0
        assert row["requeue_log"] == []

    def test_same_seed_byte_identical(self, flow_trace):
        rows = [
            run_flowsim_elastic(
                flow_trace, policy_by_name("srpt"), aconfig(jitter=0.4), seed=7
            )
            for _ in range(2)
        ]
        a, b = (json.dumps(r, sort_keys=True) for r in rows)
        assert a == b

    def test_capacity_never_exceeds_fixed_bill(self, flow_trace):
        cfg = aconfig()
        row = run_flowsim_elastic(flow_trace, policy_by_name("drep"), cfg, seed=5)
        assert row["capacity_seconds"] <= cfg.m_max * row["makespan"] + 1e-9

    def test_scale_activity_happens(self, flow_trace):
        row = run_flowsim_elastic(
            flow_trace, policy_by_name("drep"), aconfig(), seed=5
        )
        assert row["scale_ups"] >= 1  # cold start at m_min must grow


class TestWsimElastic:
    def test_completes_and_preserves_progress(self, ws_trace):
        factory = ws_scheduler_factories()["DREP"]
        row = run_wsim_elastic(ws_trace, factory(), aconfig(tick=20.0), seed=9)
        assert row["engine"] == "wsim"
        assert row["mean_flow"] > 0
        # drains park workers gracefully: nothing displaced, ever
        assert row["displaced_work"] == 0.0
        assert row["displaced_unaccounted"] == 0.0
        assert row["drains"] >= 1

    def test_same_seed_byte_identical(self, ws_trace):
        factory = ws_scheduler_factories()["DREP"]
        rows = [
            run_wsim_elastic(ws_trace, factory(), aconfig(tick=20.0), seed=9)
            for _ in range(2)
        ]
        a, b = (json.dumps(r, sort_keys=True) for r in rows)
        assert a == b

    def test_m_trace_respects_clamps(self, ws_trace):
        cfg = aconfig(tick=20.0)
        factory = ws_scheduler_factories()["SWF"]
        row = run_wsim_elastic(ws_trace, factory(), cfg, seed=9)
        assert all(cfg.m_min <= m <= cfg.m_max for _, m in row["m_trace"])
