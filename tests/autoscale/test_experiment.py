"""The autoscale experiment grid and its Pareto report."""

from __future__ import annotations

import json

import pytest

from repro.autoscale.experiment import (
    autoscale_report,
    run_autoscale_experiment,
    write_autoscale_report,
)
from repro.autoscale.guard import AutoscaleConfig

CFG = AutoscaleConfig(
    m_min=1,
    m_max=4,
    tick=5.0,
    up_watermark=15.0,
    down_watermark=4.0,
    cooldown_up=0.0,
    cooldown_down=0.0,
)


@pytest.fixture(scope="module")
def rows():
    return run_autoscale_experiment(
        CFG,
        n_jobs=80,
        flow_policies=("drep", "srpt"),
        ws_schedulers=("DREP",),
        ws_jobs=40,
        seed=3,
    )


class TestGrid:
    def test_row_count_and_pairing(self, rows):
        # (2 flow policies + 1 ws scheduler) × {fixed, elastic}
        assert len(rows) == 6
        keys = {(r["engine"], r["policy"], r["mode"]) for r in rows}
        assert ("flowsim", "drep", "fixed") in keys
        assert ("flowsim", "drep", "elastic") in keys
        assert ("wsim", "DREP", "elastic") in keys

    def test_rows_drop_decision_detail(self, rows):
        assert all("decisions" not in r for r in rows)

    def test_fixed_baseline_shape(self, rows):
        fixed = next(
            r for r in rows if r["engine"] == "flowsim" and r["mode"] == "fixed"
        )
        assert fixed["capacity_seconds"] == pytest.approx(
            CFG.m_max * fixed["makespan"]
        )
        assert fixed["scale_ups"] == 0 and fixed["displaced_work"] == 0.0

    def test_workers_equivalence(self, rows):
        parallel = run_autoscale_experiment(
            CFG,
            n_jobs=80,
            flow_policies=("drep", "srpt"),
            ws_schedulers=("DREP",),
            ws_jobs=40,
            seed=3,
            workers=2,
        )
        assert json.dumps(parallel, sort_keys=True) == json.dumps(
            rows, sort_keys=True
        )

    def test_engine_sweeps_can_be_disabled(self):
        only_flow = run_autoscale_experiment(
            CFG, n_jobs=40, flow_policies=("drep",), ws_schedulers=(), seed=3
        )
        assert {r["engine"] for r in only_flow} == {"flowsim"}


class TestReport:
    def test_schema_and_pareto(self, rows):
        report = autoscale_report(
            rows, CFG, n_jobs=80, distribution="finance", load=0.7, seed=3
        )
        assert report["schema"] == "autoscale/1"
        assert report["params"]["autoscale"]["m_max"] == 4
        drep = report["summary"]["pareto"]["flowsim"]["drep"]
        assert drep["flow_ratio"] > 0
        assert 0 < drep["capacity_ratio"] <= 1.0 + 1e-9
        assert report["summary"]["displaced_unaccounted"] == 0.0

    def test_report_is_json_serializable(self, rows, tmp_path):
        report = autoscale_report(
            rows, CFG, n_jobs=80, distribution="finance", load=0.7, seed=3
        )
        path = write_autoscale_report(report, tmp_path / "auto.json")
        assert json.loads(path.read_text())["schema"] == "autoscale/1"
