"""Unit tests for the watermark guard and its config validation."""

from __future__ import annotations

import pytest

from repro.autoscale.guard import AutoscaleConfig, WatermarkGuard


def cfg(**kw) -> AutoscaleConfig:
    base = dict(
        m_min=1,
        m_max=8,
        tick=1.0,
        up_watermark=10.0,
        down_watermark=2.0,
        cooldown_up=0.0,
        cooldown_down=0.0,
    )
    base.update(kw)
    return AutoscaleConfig(**base)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        AutoscaleConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"m_min": 0},
            {"m_min": 4, "m_max": 2},
            {"m_start": 0},
            {"m_start": 9},
            {"tick": 0.0},
            {"up_watermark": 2.0, "down_watermark": 2.0},
            {"up_watermark": 1.0, "down_watermark": 5.0},
            {"down_watermark": -1.0, "up_watermark": 1.0},
            {"step_up": 0},
            {"step_down": 0},
            {"cooldown_up": -1.0},
            {"cooldown_down": -1.0},
            {"horizon": -1.0},
            {"halflife": 0.0},
            {"requeue_delay": -0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            cfg(**kw)

    def test_initial_m_defaults_to_floor(self):
        assert cfg().initial_m == 1
        assert cfg(m_start=4).initial_m == 4


class TestWatermarks:
    def test_scale_up_above_watermark(self):
        guard = WatermarkGuard(cfg())
        target, reason = guard.propose(1.0, signal=11.0, m=2)
        assert (target, reason) == (3, "up")
        assert guard.ups == 1

    def test_scale_down_below_watermark(self):
        guard = WatermarkGuard(cfg())
        target, reason = guard.propose(1.0, signal=1.0, m=4)
        assert (target, reason) == (3, "down")
        assert guard.downs == 1

    def test_dead_band_holds(self):
        guard = WatermarkGuard(cfg())
        for signal in (2.0, 5.0, 10.0):
            target, reason = guard.propose(1.0, signal=signal, m=4)
            assert (target, reason) == (4, "hold")
        assert (guard.ups, guard.downs, guard.holds) == (0, 0, 3)

    def test_step_sizes(self):
        guard = WatermarkGuard(cfg(step_up=3, step_down=2))
        assert guard.propose(1.0, signal=99.0, m=2)[0] == 5
        guard = WatermarkGuard(cfg(step_up=3, step_down=2))
        assert guard.propose(1.0, signal=0.0, m=5)[0] == 3


class TestClamps:
    def test_never_above_m_max(self):
        guard = WatermarkGuard(cfg(m_max=4))
        target, reason = guard.propose(1.0, signal=99.0, m=4)
        assert (target, reason) == (4, "clamped")

    def test_never_below_m_min(self):
        guard = WatermarkGuard(cfg(m_min=2))
        target, reason = guard.propose(1.0, signal=0.0, m=2)
        assert (target, reason) == (2, "clamped")

    def test_step_is_clamped_not_rejected(self):
        guard = WatermarkGuard(cfg(m_max=4, step_up=10))
        assert guard.propose(1.0, signal=99.0, m=3)[0] == 4


class TestCooldowns:
    def test_up_cooldown_blocks_repeat(self):
        guard = WatermarkGuard(cfg(cooldown_up=10.0))
        assert guard.propose(0.0, signal=99.0, m=1) == (2, "up")
        assert guard.propose(5.0, signal=99.0, m=2) == (2, "cooldown")
        assert guard.propose(10.0, signal=99.0, m=2) == (3, "up")

    def test_down_cooldown_longer_than_up(self):
        guard = WatermarkGuard(cfg(cooldown_up=1.0, cooldown_down=30.0))
        assert guard.propose(0.0, signal=99.0, m=2) == (3, "up")
        # a down right after an up waits out the *down* cooldown
        assert guard.propose(2.0, signal=0.0, m=3) == (3, "cooldown")
        assert guard.propose(30.0, signal=0.0, m=3) == (2, "down")

    def test_cooldown_scale_stretches_window(self):
        guard = WatermarkGuard(cfg(cooldown_up=10.0))
        guard.propose(0.0, signal=99.0, m=1)
        # scaled window = 20: still cooling at t=15
        assert guard.propose(15.0, signal=99.0, m=2, cooldown_scale=2.0) == (
            2,
            "cooldown",
        )
        assert guard.propose(15.0, signal=99.0, m=2, cooldown_scale=1.0)[1] == "up"


class TestStateDict:
    def test_round_trip_mid_sequence(self):
        guard = WatermarkGuard(cfg(cooldown_up=5.0))
        guard.propose(0.0, signal=99.0, m=1)
        guard.propose(2.0, signal=99.0, m=2)

        clone = WatermarkGuard.from_state_dict(cfg(cooldown_up=5.0), guard.state_dict())
        assert clone.state_dict() == guard.state_dict()
        # both must make the same next decision (cooldown still active)
        assert clone.propose(4.0, signal=99.0, m=2) == guard.propose(
            4.0, signal=99.0, m=2
        )

    def test_fresh_guard_state(self):
        guard = WatermarkGuard(cfg())
        state = guard.state_dict()
        assert state == {"last_change": None, "ups": 0, "downs": 0, "holds": 0}
