"""Unit tests for the EWMA arrival predictor."""

from __future__ import annotations

import pytest

from repro.autoscale.predictor import ArrivalPredictor


class TestObserve:
    def test_rejects_bad_halflife(self):
        with pytest.raises(ValueError):
            ArrivalPredictor(halflife=0.0)

    def test_first_observation_only_seeds_clock(self):
        pred = ArrivalPredictor()
        pred.observe(0.0, 100.0)
        assert pred.rate == 0.0
        assert pred.slope == 0.0
        assert pred.observations == 1

    def test_non_advancing_clock_is_ignored(self):
        pred = ArrivalPredictor()
        pred.observe(0.0, 0.0)
        pred.observe(1.0, 5.0)
        rate = pred.rate
        pred.observe(1.0, 1000.0)  # dt == 0: dropped
        pred.observe(0.5, 1000.0)  # dt < 0: dropped
        assert pred.rate == rate
        assert pred.observations == 2

    def test_converges_to_constant_rate(self):
        pred = ArrivalPredictor(halflife=5.0)
        for k in range(200):
            pred.observe(float(k), 3.0 if k else 0.0)
        assert pred.rate == pytest.approx(3.0, rel=1e-6)
        assert pred.slope == pytest.approx(0.0, abs=1e-6)

    def test_ramp_produces_positive_slope(self):
        pred = ArrivalPredictor(halflife=10.0)
        for k in range(100):
            pred.observe(float(k), float(k))  # rate grows linearly
        assert pred.rate > 0
        assert pred.slope > 0


class TestForecast:
    def test_zero_horizon(self):
        pred = ArrivalPredictor()
        pred.observe(0.0, 0.0)
        pred.observe(1.0, 10.0)
        assert pred.forecast(0.0) == 0.0
        assert pred.forecast(-5.0) == 0.0

    def test_integrates_rate_over_horizon(self):
        pred = ArrivalPredictor(halflife=5.0)
        for k in range(200):
            pred.observe(float(k), 2.0 if k else 0.0)
        assert pred.forecast(10.0) == pytest.approx(20.0, rel=1e-5)

    def test_never_negative(self):
        pred = ArrivalPredictor(halflife=2.0)
        # a hard stop after a burst drives the slope negative
        pred.observe(0.0, 0.0)
        pred.observe(1.0, 50.0)
        for k in range(2, 40):
            pred.observe(float(k), 0.0)
        assert pred.forecast(1000.0) == 0.0


class TestStateDict:
    def test_round_trip_is_exact(self):
        pred = ArrivalPredictor(halflife=7.0)
        for k in range(10):
            pred.observe(k * 1.5, float(k % 3))
        clone = ArrivalPredictor.from_state_dict(pred.state_dict())
        assert clone.state_dict() == pred.state_dict()

    def test_restored_predictor_continues_identically(self):
        pred = ArrivalPredictor(halflife=7.0)
        for k in range(10):
            pred.observe(k * 1.5, float(k % 3))
        clone = ArrivalPredictor.from_state_dict(pred.state_dict())
        for k in range(10, 20):
            pred.observe(k * 1.5, float(k % 5))
            clone.observe(k * 1.5, float(k % 5))
        assert clone.rate == pred.rate
        assert clone.slope == pred.slope
        assert clone.forecast(13.0) == pred.forecast(13.0)

    def test_pre_first_observation_round_trip(self):
        pred = ArrivalPredictor()
        clone = ArrivalPredictor.from_state_dict(pred.state_dict())
        assert clone.state_dict() == pred.state_dict()
