"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.workloads.traces import Trace, attach_dags, generate_trace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_trace(
    works,
    releases=None,
    mode: ParallelismMode = ParallelismMode.SEQUENTIAL,
    m: int = 2,
) -> Trace:
    """Hand-built trace from explicit work values (and optional releases)."""
    releases = releases if releases is not None else [0.0] * len(works)
    jobs = []
    for i, (w, r) in enumerate(zip(works, releases)):
        span = w if mode is ParallelismMode.SEQUENTIAL else w / m
        jobs.append(JobSpec(job_id=i, release=float(r), work=float(w), span=span, mode=mode))
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual", name="manual")


@pytest.fixture
def tiny_seq_trace() -> Trace:
    """Three sequential jobs with staggered arrivals."""
    return make_trace([4.0, 2.0, 1.0], releases=[0.0, 1.0, 2.0])


@pytest.fixture
def small_random_trace() -> Trace:
    return generate_trace(
        n_jobs=200, distribution="finance", load=0.6, m=4, seed=11
    )


@pytest.fixture
def small_parallel_trace() -> Trace:
    return generate_trace(
        n_jobs=200,
        distribution="bing",
        load=0.5,
        m=4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=13,
    )


@pytest.fixture
def small_dag_trace() -> Trace:
    """A small DAG-attached trace for runtime-simulator tests."""
    base = generate_trace(
        n_jobs=30,
        distribution="finance",
        load=0.6,
        m=4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=17,
        scale_work_with_m=False,
    )
    from repro.analysis.experiments import scale_trace

    return attach_dags(scale_trace(base, 150.0), parallelism=6, seed=19)
