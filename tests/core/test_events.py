"""Tests for repro.core.events — ordering and lazy invalidation."""

from __future__ import annotations

import pytest

from repro.core.events import EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push_arrival(5.0, job_id=1)
        q.push_arrival(2.0, job_id=2)
        q.push_arrival(9.0, job_id=3)
        assert [q.pop().job_id for _ in range(3)] == [2, 1, 3]

    def test_arrival_before_completion_at_equal_time(self):
        q = EventQueue()
        q.set_version(7, 0)
        q.push_completion(3.0, job_id=7, version=0)
        q.push_arrival(3.0, job_id=8)
        first = q.pop()
        assert first.kind is EventKind.ARRIVAL

    def test_fifo_among_equal_arrivals(self):
        q = EventQueue()
        for j in range(5):
            q.push_arrival(1.0, job_id=j)
        assert [q.pop().job_id for _ in range(5)] == list(range(5))

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None


class TestLazyInvalidation:
    def test_stale_completion_skipped(self):
        q = EventQueue()
        q.set_version(1, 0)
        q.push_completion(1.0, job_id=1, version=0)
        q.set_version(1, 1)  # rate changed: old prediction is stale
        q.push_completion(2.0, job_id=1, version=1)
        ev = q.pop()
        assert ev.time == 2.0 and ev.version == 1
        assert q.pop() is None

    def test_completion_consumed_once(self):
        q = EventQueue()
        q.set_version(1, 0)
        q.push_completion(1.0, job_id=1, version=0)
        assert q.pop().kind is EventKind.COMPLETION
        q.push_completion(2.0, job_id=1, version=0)
        assert q.pop() is None  # version registry was consumed

    def test_clear_job_invalidates(self):
        q = EventQueue()
        q.set_version(1, 0)
        q.push_completion(1.0, job_id=1, version=0)
        q.clear_job(1)
        assert q.pop() is None

    def test_peek_time_skips_stale(self):
        q = EventQueue()
        q.set_version(1, 0)
        q.push_completion(1.0, job_id=1, version=0)
        q.set_version(1, 1)
        q.push_completion(5.0, job_id=1, version=1)
        assert q.peek_time() == 5.0

    def test_peek_on_empty(self):
        assert EventQueue().peek_time() is None


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push_arrival(-1.0, job_id=0)

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push_timer(float("nan"))

    def test_timer_events(self):
        q = EventQueue()
        q.push_timer(3.0)
        ev = q.pop()
        assert ev.kind is EventKind.TIMER and ev.time == 3.0

    def test_len_counts_raw_heap(self):
        q = EventQueue()
        q.push_arrival(1.0, 0)
        q.push_arrival(2.0, 1)
        assert len(q) == 2
        assert not q.empty
