"""Model-based (stateful) testing of the EventQueue against a reference.

Hypothesis drives random sequences of pushes, version bumps, clears and
pops; a brute-force reference model computes the expected pop order.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.events import EventKind, EventQueue


class EventQueueMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.q = EventQueue()
        # reference: list of live (time, kind, seq, job, version)
        self.model: list[tuple] = []
        self.versions: dict[int, int] = {}
        self.seq = 0

    def _next_seq(self) -> int:
        self.seq += 1
        return self.seq

    @rule(time=st.floats(0, 100, allow_nan=False), job=st.integers(0, 5))
    def push_arrival(self, time, job):
        self.q.push_arrival(time, job)
        self.model.append((time, int(EventKind.ARRIVAL), self._next_seq(), job, 0))

    @rule(time=st.floats(0, 100, allow_nan=False))
    def push_timer(self, time):
        self.q.push_timer(time)
        self.model.append((time, int(EventKind.TIMER), self._next_seq(), -1, 0))

    @rule(
        time=st.floats(0, 100, allow_nan=False),
        job=st.integers(0, 5),
    )
    def push_completion_current_version(self, time, job):
        # fresh-version contract: registering an old number would revive
        # consumed heap entries, so versions only move forward (exactly
        # what the flow engine does)
        version = self.versions.get(job, 0)
        self.q.set_version(job, version)
        self.q.push_completion(time, job, version)
        self.model.append((time, int(EventKind.COMPLETION), self._next_seq(), job, version))
        # re-registering the same version revives same-version entries
        # that were only *superseded* (never popped); the model keeps all
        # same-version entries live, so nothing to fix here — popping is
        # the only consumer, handled in pop()

    @rule(job=st.integers(0, 5))
    def bump_version(self, job):
        self.versions[job] = self.versions.get(job, 0) + 1
        self.q.set_version(job, self.versions[job])
        # reference: completions of older versions are now dead
        self.model = [
            ev
            for ev in self.model
            if not (
                ev[1] == int(EventKind.COMPLETION)
                and ev[3] == job
                and ev[4] != self.versions[job]
            )
        ]

    @rule(job=st.integers(0, 5))
    def clear_job(self, job):
        self.q.clear_job(job)
        # keep the job's version counter moving forward so later pushes
        # never reuse a number that stale heap entries still carry (the
        # documented fresh-version contract)
        self.versions[job] = self.versions.get(job, 0) + 1
        self.model = [
            ev
            for ev in self.model
            if not (ev[1] == int(EventKind.COMPLETION) and ev[3] == job)
        ]

    @rule()
    def pop(self):
        got = self.q.pop()
        if not self.model:
            assert got is None
            return
        expected = min(self.model)
        self.model.remove(expected)
        assert got is not None
        assert got.time == expected[0]
        assert int(got.kind) == expected[1]
        if got.kind is EventKind.COMPLETION:
            assert got.job_id == expected[3]
            # a popped completion consumes the job's version registration:
            # remaining same-version entries are dead.  Move the model's
            # version forward so future pushes use a fresh number (the
            # engine contract documented on EventQueue).
            consumed = expected[4]
            self.versions[got.job_id] = consumed + 1
            self.model = [
                ev
                for ev in self.model
                if not (
                    ev[1] == int(EventKind.COMPLETION) and ev[3] == got.job_id
                )
            ]

    @invariant()
    def peek_matches_model(self):
        t = self.q.peek_time()
        if not self.model:
            assert t is None
        else:
            assert t == min(self.model)[0]


EventQueueMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestEventQueueStateful = EventQueueMachine.TestCase
