"""Tests for repro.core.job — spec validation and state transitions."""

from __future__ import annotations

import pytest

from repro.core.job import JobSpec, JobState, ParallelismMode


def spec(**kw):
    defaults = dict(job_id=0, release=0.0, work=10.0, span=10.0)
    defaults.update(kw)
    return JobSpec(**defaults)


class TestParallelismMode:
    def test_sequential_rate_cap(self):
        assert ParallelismMode.SEQUENTIAL.rate_cap(16) == 1.0

    def test_parallel_rate_cap(self):
        assert ParallelismMode.FULLY_PARALLEL.rate_cap(16) == 16.0

    def test_dag_rate_cap(self):
        assert ParallelismMode.DAG.rate_cap(8) == 8.0


class TestJobSpec:
    def test_valid(self):
        s = spec()
        assert s.work == 10.0

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            spec(job_id=-1)

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            spec(release=-0.5)

    def test_zero_work_rejected(self):
        with pytest.raises(ValueError):
            spec(work=0.0, span=0.0)

    def test_span_exceeding_work_rejected(self):
        with pytest.raises(ValueError):
            spec(work=5.0, span=6.0, mode=ParallelismMode.FULLY_PARALLEL)

    def test_sequential_requires_span_equals_work(self):
        with pytest.raises(ValueError):
            spec(work=10.0, span=5.0)  # sequential by default

    def test_parallel_span_below_work_ok(self):
        s = spec(span=2.0, mode=ParallelismMode.FULLY_PARALLEL)
        assert s.span == 2.0

    def test_nan_work_rejected(self):
        with pytest.raises(ValueError):
            spec(work=float("nan"), span=float("nan"))

    def test_inf_release_rejected(self):
        with pytest.raises(ValueError):
            spec(release=float("inf"))


class TestLowerBound:
    def test_sequential_bound_is_work(self):
        # a sequential job cannot use more than one processor
        s = spec(work=10.0, span=10.0)
        assert s.lower_bound(m=8) == 10.0

    def test_parallel_bound_work_over_m(self):
        s = spec(work=16.0, span=1.0, mode=ParallelismMode.FULLY_PARALLEL)
        assert s.lower_bound(m=4) == 4.0

    def test_parallel_bound_span_dominates(self):
        s = spec(work=16.0, span=9.0, mode=ParallelismMode.FULLY_PARALLEL)
        assert s.lower_bound(m=4) == 9.0


class TestJobState:
    def test_initial_remaining_is_work(self):
        st = JobState(spec=spec())
        assert st.remaining == 10.0
        assert not st.done

    def test_complete_sets_flow_time(self):
        st = JobState(spec=spec(release=2.0))
        st.complete(now=7.5)
        assert st.done
        assert st.flow_time == pytest.approx(5.5)
        assert st.remaining == 0.0

    def test_double_completion_rejected(self):
        st = JobState(spec=spec())
        st.complete(now=3.0)
        with pytest.raises(ValueError):
            st.complete(now=4.0)

    def test_completion_before_release_rejected(self):
        st = JobState(spec=spec(release=5.0))
        with pytest.raises(ValueError):
            st.complete(now=4.0)

    def test_flow_time_before_completion_raises(self):
        st = JobState(spec=spec())
        with pytest.raises(ValueError):
            _ = st.flow_time
