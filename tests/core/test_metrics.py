"""Tests for repro.core.metrics — summaries and comparisons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import ScheduleResult, compare_results, summarize_flow


def result(flows, scheduler="X", m=4, **kw):
    return ScheduleResult(scheduler=scheduler, m=m, flow_times=np.array(flows), **kw)


class TestScheduleResult:
    def test_mean_flow(self):
        assert result([1.0, 2.0, 3.0]).mean_flow == pytest.approx(2.0)

    def test_total_flow(self):
        assert result([1.0, 2.0, 3.0]).total_flow == pytest.approx(6.0)

    def test_max_flow(self):
        assert result([1.0, 5.0, 3.0]).max_flow == 5.0

    def test_percentile(self):
        r = result(list(range(101)))
        assert r.percentile(50) == pytest.approx(50.0)
        assert r.percentile(99) == pytest.approx(99.0)

    def test_empty_result(self):
        r = result([])
        assert r.mean_flow == 0.0
        assert r.n_jobs == 0

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            result([1.0, -2.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            result([[1.0], [2.0]])

    def test_nonpositive_m_rejected(self):
        with pytest.raises(ValueError):
            result([1.0], m=0)

    def test_summary_keys(self):
        s = result([1.0, 2.0], preemptions=3, extra={"utilization": 0.5}).summary()
        assert s["mean_flow"] == pytest.approx(1.5)
        assert s["preemptions"] == 3
        assert s["utilization"] == 0.5
        assert s["n_jobs"] == 2


class TestSummarize:
    def test_averages_repetitions(self):
        rs = [result([2.0], scheduler="A"), result([4.0], scheduler="A"), result([1.0], scheduler="B")]
        out = summarize_flow(rs)
        assert out == {"A": pytest.approx(3.0), "B": pytest.approx(1.0)}


class TestCompare:
    def test_flow_ratio(self):
        base = result([1.0, 1.0], scheduler="SRPT")
        other = result([2.0, 4.0], scheduler="DREP")
        assert compare_results(base, other)["flow_ratio"] == pytest.approx(3.0)

    def test_preemption_ratio_zero_baseline(self):
        base = result([1.0], preemptions=0)
        other = result([1.0], preemptions=5)
        assert compare_results(base, other)["preemption_ratio"] == float("inf")

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            compare_results(result([1.0]), result([1.0, 2.0]))
