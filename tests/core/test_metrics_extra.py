"""Additional metrics edge cases and cross-checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ScheduleResult


def result(flows, **kw):
    return ScheduleResult(scheduler="X", m=2, flow_times=np.array(flows, dtype=float), **kw)


class TestLkNorms:
    def test_l1_is_total_flow(self):
        r = result([1.0, 2.0, 3.0])
        assert r.lk_norm(1) == pytest.approx(r.total_flow)

    def test_large_k_approaches_max(self):
        r = result([1.0, 2.0, 10.0])
        assert r.lk_norm(50) == pytest.approx(r.max_flow, rel=0.05)

    @settings(max_examples=40, deadline=None)
    @given(
        flows=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20),
        k1=st.floats(1.0, 4.0),
        k2=st.floats(4.01, 12.0),
    )
    def test_norm_ordering_property(self, flows, k1, k2):
        """Power-mean style ordering: for k2 > k1 >= 1, the ℓ_k norm is
        non-increasing in k (for fixed vectors, ||x||_k2 <= ||x||_k1)."""
        r = result(flows)
        assert r.lk_norm(k2) <= r.lk_norm(k1) * (1 + 1e-9)


class TestWeightedMean:
    def test_weight_shift_moves_mean(self):
        base = result([1.0, 9.0], weights=np.array([1.0, 1.0]))
        tilted = result([1.0, 9.0], weights=np.array([9.0, 1.0]))
        assert tilted.weighted_mean_flow() < base.weighted_mean_flow()

    def test_no_weights_falls_back(self):
        r = result([2.0, 4.0])
        assert r.weighted_mean_flow() == r.mean_flow


class TestSummaryCompleteness:
    def test_summary_includes_all_counters(self):
        r = result(
            [1.0],
            preemptions=1,
            migrations=2,
            steal_attempts=3,
            muggings=4,
            makespan=5.0,
        )
        s = r.summary()
        assert s["preemptions"] == 1
        assert s["migrations"] == 2
        assert s["steal_attempts"] == 3
        assert s["muggings"] == 4
        assert s["makespan"] == 5.0

    def test_extra_keys_merged_and_not_clobbering(self):
        r = result([1.0], extra={"utilization": 0.5, "custom": "x"})
        s = r.summary()
        assert s["custom"] == "x"
        assert s["utilization"] == 0.5
