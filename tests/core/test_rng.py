"""Tests for repro.core.rng — determinism and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import RngFactory, derive_seed, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("arrivals") == stable_hash("arrivals")

    def test_distinct_names_distinct_hashes(self):
        names = [f"stream-{i}" for i in range(200)]
        hashes = {stable_hash(n) for n in names}
        assert len(hashes) == len(names)

    def test_64_bit_range(self):
        h = stable_hash("x")
        assert 0 <= h < 2**64

    def test_unicode(self):
        assert stable_hash("日本語") == stable_hash("日本語")


class TestDeriveSeed:
    """Regression pins for the library's single seed-derivation rule.

    These literals are load-bearing: the grid runner labels replication
    cells with ``derive_seed(seed, "rep/<r>")`` and every recorded sweep
    assumes the mapping never changes.  If this test fails, the fix is
    to revert the change to ``derive_seed``, not to update the numbers.
    """

    def test_pinned_values(self):
        assert derive_seed(0, "rep/1") == 4888761903474508797
        assert derive_seed(42, "arrivals") == 5884807015913752455
        assert derive_seed(7, "rep/3") == 2374400447540655814
        assert derive_seed(2**62, "x") == 1105755725977870154

    def test_range(self):
        for seed in (0, 1, 2**62, 2**63 - 1):
            assert 0 <= derive_seed(seed, "n") < 2**63

    def test_matches_child_factory(self):
        # RngFactory.child is defined in terms of derive_seed; keep it so
        assert RngFactory(11).child("rep/2").seed == derive_seed(11, "rep/2")

    def test_distinct_names_distinct_seeds(self):
        seeds = {derive_seed(3, f"rep/{r}") for r in range(100)}
        assert len(seeds) == 100


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).stream("work").random(16)
        b = RngFactory(7).stream("work").random(16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(7).stream("work").random(16)
        b = RngFactory(8).stream("work").random(16)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        f = RngFactory(7)
        a = f.stream("work").random(16)
        b = f.stream("arrivals").random(16)
        assert not np.array_equal(a, b)

    def test_stream_order_independent(self):
        f1 = RngFactory(3)
        _ = f1.stream("a").random(4)
        x = f1.stream("b").random(4)
        f2 = RngFactory(3)
        y = f2.stream("b").random(4)
        np.testing.assert_array_equal(x, y)

    def test_child_factories_reproducible(self):
        a = RngFactory(5).child("rep0").stream("s").random(8)
        b = RngFactory(5).child("rep0").stream("s").random(8)
        np.testing.assert_array_equal(a, b)

    def test_child_differs_from_parent(self):
        parent = RngFactory(5)
        child = parent.child("rep0")
        assert child.seed != parent.seed
        a = parent.stream("s").random(8)
        b = child.stream("s").random(8)
        assert not np.array_equal(a, b)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RngFactory(seed="42")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        f = RngFactory(np.int64(9))
        assert f.seed == 9
