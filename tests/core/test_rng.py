"""Tests for repro.core.rng — determinism and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import RngFactory, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("arrivals") == stable_hash("arrivals")

    def test_distinct_names_distinct_hashes(self):
        names = [f"stream-{i}" for i in range(200)]
        hashes = {stable_hash(n) for n in names}
        assert len(hashes) == len(names)

    def test_64_bit_range(self):
        h = stable_hash("x")
        assert 0 <= h < 2**64

    def test_unicode(self):
        assert stable_hash("日本語") == stable_hash("日本語")


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).stream("work").random(16)
        b = RngFactory(7).stream("work").random(16)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(7).stream("work").random(16)
        b = RngFactory(8).stream("work").random(16)
        assert not np.array_equal(a, b)

    def test_different_names_differ(self):
        f = RngFactory(7)
        a = f.stream("work").random(16)
        b = f.stream("arrivals").random(16)
        assert not np.array_equal(a, b)

    def test_stream_order_independent(self):
        f1 = RngFactory(3)
        _ = f1.stream("a").random(4)
        x = f1.stream("b").random(4)
        f2 = RngFactory(3)
        y = f2.stream("b").random(4)
        np.testing.assert_array_equal(x, y)

    def test_child_factories_reproducible(self):
        a = RngFactory(5).child("rep0").stream("s").random(8)
        b = RngFactory(5).child("rep0").stream("s").random(8)
        np.testing.assert_array_equal(a, b)

    def test_child_differs_from_parent(self):
        parent = RngFactory(5)
        child = parent.child("rep0")
        assert child.seed != parent.seed
        a = parent.stream("s").random(8)
        b = child.stream("s").random(8)
        assert not np.array_equal(a, b)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RngFactory(seed="42")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        f = RngFactory(np.int64(9))
        assert f.seed == 9
