"""Tests for slowdown (stretch) metrics and their engine wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import ScheduleResult
from repro.flowsim.engine import simulate
from repro.flowsim.policies import RoundRobin, SRPT, DrepSequential
from repro.workloads.traces import generate_trace
from tests.conftest import make_trace


class TestSlowdownMetric:
    def test_basic(self):
        r = ScheduleResult(
            scheduler="X",
            m=1,
            flow_times=np.array([2.0, 6.0]),
            min_flows=np.array([1.0, 2.0]),
        )
        np.testing.assert_allclose(r.slowdowns, [2.0, 3.0])
        assert r.mean_slowdown() == pytest.approx(2.5)
        assert r.max_slowdown() == 3.0
        assert r.slowdown_percentile(50) == pytest.approx(2.5)

    def test_requires_min_flows(self):
        r = ScheduleResult(scheduler="X", m=1, flow_times=np.array([1.0]))
        with pytest.raises(ValueError, match="min_flows"):
            _ = r.slowdowns

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            ScheduleResult(
                scheduler="X",
                m=1,
                flow_times=np.array([1.0, 2.0]),
                min_flows=np.array([1.0]),
            )

    def test_positive_min_flows_required(self):
        with pytest.raises(ValueError):
            ScheduleResult(
                scheduler="X",
                m=1,
                flow_times=np.array([1.0]),
                min_flows=np.array([0.0]),
            )

    def test_lk_norm(self):
        r = ScheduleResult(scheduler="X", m=1, flow_times=np.array([3.0, 4.0]))
        assert r.lk_norm(2) == pytest.approx(5.0)
        assert r.lk_norm(1) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            r.lk_norm(0)

    def test_lk_norm_empty(self):
        r = ScheduleResult(scheduler="X", m=1, flow_times=np.empty(0))
        assert r.lk_norm(2) == 0.0


class TestEngineWiring:
    def test_slowdowns_at_least_one(self, small_random_trace):
        r = simulate(small_random_trace, 4, SRPT())
        assert (r.slowdowns >= 1.0 - 1e-9).all()

    def test_single_job_slowdown_is_one(self):
        trace = make_trace([5.0])
        r = simulate(trace, 1, SRPT())
        assert r.slowdowns[0] == pytest.approx(1.0)

    def test_wsim_slowdowns(self, small_dag_trace):
        from repro.wsim.runtime import simulate_ws
        from repro.wsim.schedulers import DrepWS

        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=1)
        assert (r.slowdowns >= 1.0 - 1e-9).all()


class TestFairnessStory:
    def test_srpt_stretches_large_jobs_more_than_drep(self):
        """The fairness inversion: SRPT wins on mean flow but stretches
        the biggest jobs; equi-partition (RR/DREP) bounds the stretch."""
        trace = generate_trace(4000, "bing", 0.7, 4, seed=61)
        srpt = simulate(trace, 4, SRPT(), seed=61)
        rr = simulate(trace, 4, RoundRobin(), seed=61)
        drep = simulate(trace, 4, DrepSequential(), seed=61)
        # mean flow: SRPT best
        assert srpt.mean_flow <= rr.mean_flow
        # but tail slowdown: the large jobs suffer more under SRPT than RR
        works = np.array([j.work for j in trace.jobs])
        big = works >= np.percentile(works, 99)
        srpt_big = srpt.slowdowns[big].mean()
        rr_big = rr.slowdowns[big].mean()
        drep_big = drep.slowdowns[big].mean()
        assert srpt_big > rr_big
        assert drep_big <= srpt_big * 1.1
