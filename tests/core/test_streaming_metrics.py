"""StreamingMetrics: streamed statistics must match the dense arrays.

The Hypothesis property at the heart of the streaming tentpole: folding
random flow batches in any chunking yields the same summary a dense
:class:`ScheduleResult` computes from the full arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ScheduleResult, StreamingMetrics


def _chunks(arr: np.ndarray, sizes: list[int]):
    i = 0
    for s in sizes:
        if i >= arr.size:
            return
        yield arr[i : i + s]
        i += s
    if i < arr.size:
        yield arr[i:]


@st.composite
def flows_and_chunking(draw):
    n = draw(st.integers(1, 60))
    flows = np.array(
        draw(
            st.lists(
                st.floats(0.0, 1e6, allow_nan=False, width=32),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=float,
    )
    sizes = draw(st.lists(st.integers(1, 17), min_size=1, max_size=12))
    with_min = draw(st.booleans())
    with_weights = draw(st.booleans())
    min_flows = None
    weights = None
    if with_min:
        min_flows = np.array(
            draw(
                st.lists(
                    st.floats(0.001953125, 1024.0, allow_nan=False, width=32),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=float,
        )
    if with_weights:
        weights = np.array(
            draw(
                st.lists(
                    st.floats(0.001953125, 1024.0, allow_nan=False, width=32),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=float,
        )
    return flows, weights, min_flows, sizes


@settings(max_examples=120, deadline=None)
@given(flows_and_chunking())
def test_streaming_matches_dense_summary(case):
    flows, weights, min_flows, sizes = case
    sm = StreamingMetrics(keep_flow_times=True)
    offset = 0
    for chunk in _chunks(flows, sizes):
        k = chunk.size
        sm.add_batch(
            chunk,
            None if weights is None else weights[offset : offset + k],
            None if min_flows is None else min_flows[offset : offset + k],
        )
        offset += k

    dense = ScheduleResult(
        scheduler="test",
        m=1,
        flow_times=flows,
        weights=weights,
        min_flows=min_flows,
    )
    assert sm.count == flows.size
    assert sm.max_flow == (flows.max() if flows.size else 0.0)
    assert sm.mean_flow == pytest.approx(dense.mean_flow, rel=1e-12, abs=1e-12)
    assert sm.total_flow == pytest.approx(float(flows.sum()), rel=1e-12, abs=1e-9)
    # keep_flow_times: quantiles are exact regardless of count
    for q in (0, 25, 50, 95, 99, 100):
        assert sm.percentile(q) == pytest.approx(
            float(np.percentile(flows, q)), rel=1e-12, abs=1e-12
        )
    # round-trip arrays
    assert np.array_equal(sm.flow_times, flows)
    if weights is None:
        assert sm.weights is None
    else:
        assert np.array_equal(sm.weights, weights)
    if min_flows is None:
        assert sm.min_flows is None
        with pytest.raises(ValueError):
            sm.mean_slowdown()
    else:
        assert np.array_equal(sm.min_flows, min_flows)
        slow = flows / min_flows
        assert sm.mean_slowdown() == pytest.approx(
            float(slow.mean()), rel=1e-12, abs=1e-12
        )
        assert sm.max_slowdown == pytest.approx(float(slow.max()))
    if weights is not None:
        wm = float((weights * flows).sum() / weights.sum())
        assert sm.weighted_mean_flow() == pytest.approx(wm, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(flows_and_chunking())
def test_chunking_invariance(case):
    """Any chunking folds to identical statistics (and reservoir)."""
    flows, weights, min_flows, sizes = case
    one = StreamingMetrics(reservoir_size=16, seed=9)
    one.add_batch(flows, weights, min_flows)
    many = StreamingMetrics(reservoir_size=16, seed=9)
    offset = 0
    for chunk in _chunks(flows, sizes):
        k = chunk.size
        many.add_batch(
            chunk,
            None if weights is None else weights[offset : offset + k],
            None if min_flows is None else min_flows[offset : offset + k],
        )
        offset += k
    assert one.count == many.count
    # compensated totals agree to ~1 ulp across chunkings (exactly equal
    # is not promised: fsum-per-chunk folds round once per batch)
    assert one.total_flow == pytest.approx(many.total_flow, rel=1e-13, abs=1e-12)
    assert one.max_flow == many.max_flow
    assert one.percentile(50) == many.percentile(50)
    assert one.percentile(99) == many.percentile(99)
    assert np.array_equal(
        one._reservoir[: min(one.count, 16)], many._reservoir[: min(many.count, 16)]
    )


def test_reservoir_estimates_are_seeded_and_bounded():
    rng = np.random.default_rng(0)
    flows = rng.exponential(10.0, size=100_000)
    a = StreamingMetrics(reservoir_size=512, seed=1)
    b = StreamingMetrics(reservoir_size=512, seed=1)
    for chunk in np.array_split(flows, 77):
        a.add_batch(chunk)
    b.add_batch(flows)
    assert not a.quantiles_exact
    assert a.percentile(99) == b.percentile(99)  # chunking-invariant draw
    # an unbiased 512-sample estimate lands near the true quantile
    true_p50 = float(np.percentile(flows, 50))
    assert a.percentile(50) == pytest.approx(true_p50, rel=0.2)
    # memory model: only the reservoir is retained
    assert a._reservoir.size == 512
    assert not a._kept_flows


def test_exact_below_reservoir_size():
    flows = np.arange(1.0, 101.0)
    sm = StreamingMetrics(reservoir_size=4096)
    sm.add_batch(flows)
    assert sm.quantiles_exact
    assert sm.percentile(50) == pytest.approx(float(np.percentile(flows, 50)))


def test_percentile_validation():
    sm = StreamingMetrics()
    sm.add(1.0)
    with pytest.raises(ValueError):
        sm.percentile(-1)
    with pytest.raises(ValueError):
        sm.percentile(101)


def test_folded_arrays_unavailable_without_opt_in():
    sm = StreamingMetrics()
    sm.add(1.0)
    with pytest.raises(ValueError, match="keep_flow_times"):
        _ = sm.flow_times
    with pytest.raises(ValueError, match="keep_flow_times"):
        _ = sm.min_flows
    with pytest.raises(ValueError, match="keep_flow_times"):
        _ = sm.weights


def test_input_validation():
    sm = StreamingMetrics()
    with pytest.raises(ValueError, match="1-D"):
        sm.add_batch(np.zeros((2, 2)))
    with pytest.raises(ValueError, match="negative"):
        sm.add_batch(np.array([-1.0]))
    with pytest.raises(ValueError, match="align"):
        sm.add_batch(np.array([1.0, 2.0]), np.array([1.0]))
    with pytest.raises(ValueError, match="align"):
        sm.add_batch(np.array([1.0, 2.0]), None, np.array([1.0]))
    with pytest.raises(ValueError, match="positive"):
        sm.add_batch(np.array([1.0]), None, np.array([0.0]))
    with pytest.raises(ValueError, match="reservoir_size"):
        StreamingMetrics(reservoir_size=0)


class TestSloAttainment:
    def test_exact_counter_fold(self):
        sm = StreamingMetrics(slo_threshold=5.0)
        sm.add_batch(np.array([1.0, 5.0, 5.0 + 1e-9, 12.0]))
        assert sm.slo_attained == 2  # boundary flow == threshold attains
        sm.add(4.0)
        assert sm.slo_attained == 3
        assert sm.slo_attainment == pytest.approx(0.6)
        s = sm.summary()
        assert s["slo_threshold"] == 5.0
        assert s["slo_attainment"] == pytest.approx(0.6)

    def test_absent_without_threshold(self):
        sm = StreamingMetrics()
        sm.add(1.0)
        assert sm.slo_attainment is None
        assert "slo_attainment" not in sm.summary()
        assert "slo_threshold" not in sm.summary()

    def test_empty_run_attains_nothing(self):
        sm = StreamingMetrics(slo_threshold=1.0)
        assert sm.slo_attainment == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="slo_threshold"):
            StreamingMetrics(slo_threshold=0.0)
        with pytest.raises(ValueError, match="slo_threshold"):
            StreamingMetrics(slo_threshold=-2.0)

    def test_exact_beyond_reservoir(self):
        # the fold is a plain counter, so it stays exact long after the
        # quantile reservoir switches to estimates
        sm = StreamingMetrics(reservoir_size=8, slo_threshold=100.0)
        flows = np.arange(1.0, 201.0)  # 1..200, exactly half attain
        sm.add_batch(flows)
        assert not sm.quantiles_exact
        assert sm.slo_attained == 100
        assert sm.slo_attainment == pytest.approx(0.5)

    def test_batching_invariance(self):
        flows = np.linspace(0.5, 30.0, 173)
        one = StreamingMetrics(slo_threshold=9.0)
        one.add_batch(flows)
        many = StreamingMetrics(slo_threshold=9.0)
        for i in range(0, 173, 7):
            many.add_batch(flows[i : i + 7])
        assert one.slo_attained == many.slo_attained
        assert one.slo_attainment == many.slo_attainment
