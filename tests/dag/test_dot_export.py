"""Tests for DagJob.to_dot."""

from __future__ import annotations

import numpy as np

from repro.dag.generators import chain, spawn_tree
from repro.dag.graph import NO_CHILD, DagJob


def diamond():
    return DagJob(
        weights=np.array([1, 2, 5, 1]),
        child1=np.array([1, 3, 3, NO_CHILD]),
        child2=np.array([2, NO_CHILD, NO_CHILD, NO_CHILD]),
        name="diamond",
    )


class TestDotExport:
    def test_structure(self):
        dot = diamond().to_dot()
        assert dot.startswith('digraph "diamond"')
        assert dot.rstrip().endswith("}")
        # 4 nodes, 4 edges
        assert dot.count("->") == 4
        for u in range(4):
            assert f"n{u} [" in dot

    def test_labels_carry_weights(self):
        dot = diamond().to_dot()
        assert '"2:5"' in dot  # node 2 has weight 5

    def test_critical_path_highlighted(self):
        # critical path of the diamond: 0 -> 2 -> 3
        dot = diamond().to_dot(highlight_critical=True)
        assert "n0 -> n2 [color=red" in dot
        assert "n2 -> n3 [color=red" in dot
        assert "n0 -> n1 [color=red" not in dot

    def test_no_highlight_option(self):
        dot = diamond().to_dot(highlight_critical=False)
        assert "red" not in dot

    def test_chain_fully_critical(self):
        dot = chain(6, 2).to_dot()
        # every node and edge of a chain is critical: 3 nodes + 2 edges
        assert dot.count("color=red") == 5

    def test_spawn_tree_renders(self):
        dot = spawn_tree(3, 5).to_dot()
        d = spawn_tree(3, 5)
        assert dot.count("->") == len(d.edges())
