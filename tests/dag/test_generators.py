"""Tests for repro.dag.generators — shapes, invariants, property-based."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.generators import chain, fork_join, layered_random, spawn_tree, wide
from repro.dag.validate import validate_dag


class TestChain:
    def test_exact_work(self):
        d = chain(17, granularity=5)
        assert d.work == 17

    def test_span_equals_work(self):
        d = chain(23, granularity=4)
        assert d.span == d.work

    def test_single_unit(self):
        d = chain(1)
        assert d.n_nodes == 1

    def test_granularity_controls_node_count(self):
        assert chain(100, granularity=10).n_nodes == 10
        assert chain(100, granularity=1).n_nodes == 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chain(0)
        with pytest.raises(ValueError):
            chain(5, granularity=0)

    def test_valid_dag(self):
        validate_dag(chain(37, granularity=7))


class TestSpawnTree:
    def test_leaf_count_work(self):
        d = spawn_tree(depth=3, leaf_weight=10, spawn_weight=1)
        # 8 leaves of weight 10, 7 spawn + 7 sync internal nodes of weight 1
        assert d.work == 8 * 10 + 14

    def test_depth_zero_is_single_node(self):
        d = spawn_tree(depth=0, leaf_weight=5)
        assert d.n_nodes == 1 and d.work == 5

    def test_span_structure(self):
        d = spawn_tree(depth=2, leaf_weight=10, spawn_weight=1)
        # span: spawn, spawn, leaf, sync, sync = 1+1+10+1+1
        assert d.span == 14

    def test_parallelism_grows_with_depth(self):
        shallow = spawn_tree(2, 100)
        deep = spawn_tree(5, 100)
        assert deep.work / deep.span > shallow.work / shallow.span

    def test_valid(self):
        for depth in range(5):
            validate_dag(spawn_tree(depth, 3))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            spawn_tree(-1, 1)
        with pytest.raises(ValueError):
            spawn_tree(2, 0)


class TestForkJoin:
    def test_work_accounting(self):
        d = fork_join(segments=2, width=4, strand_work=10, overhead_weight=1)
        # per segment: 1 root + 2 fan nodes (4 leaves from 1 root needs 3
        # internal? builder expands root itself) + 4 strands + fan-in
        assert d.work >= 2 * 4 * 10
        validate_dag(d)

    def test_width_one(self):
        d = fork_join(segments=3, width=1, strand_work=5)
        validate_dag(d)
        assert d.span == d.work  # no parallelism at width 1

    def test_segments_serialize(self):
        one = fork_join(1, 8, 10)
        two = fork_join(2, 8, 10)
        assert two.span > one.span

    def test_wide_is_single_segment(self):
        d = wide(width=8, strand_work=10)
        validate_dag(d)
        # parallelism should be close to 8
        assert d.work / d.span > 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            fork_join(0, 1, 1)


class TestLayeredRandom:
    def test_valid_many_seeds(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            validate_dag(layered_random(5, 6, 4, rng))

    def test_single_layer(self):
        rng = np.random.default_rng(1)
        validate_dag(layered_random(1, 1, 1, rng))

    def test_invalid(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            layered_random(0, 1, 1, rng)


@settings(max_examples=60, deadline=None)
@given(
    depth=st.integers(0, 6),
    leaf=st.integers(1, 50),
    spawn=st.integers(1, 5),
)
def test_spawn_tree_properties(depth, leaf, spawn):
    d = spawn_tree(depth, leaf, spawn)
    validate_dag(d)
    assert 1 <= d.span <= d.work
    assert d.work == (2**depth) * leaf + 2 * (2**depth - 1) * spawn


@settings(max_examples=60, deadline=None)
@given(
    segments=st.integers(1, 4),
    width=st.integers(1, 12),
    strand=st.integers(1, 30),
)
def test_fork_join_properties(segments, width, strand):
    d = fork_join(segments, width, strand)
    validate_dag(d)
    assert d.work >= segments * width * strand
    # span must include every segment's strand at least once
    assert d.span >= segments * strand


@settings(max_examples=40, deadline=None)
@given(
    layers=st.integers(1, 8),
    width=st.integers(1, 10),
    weight=st.integers(1, 10),
    seed=st.integers(0, 10_000),
)
def test_layered_random_properties(layers, width, weight, seed):
    rng = np.random.default_rng(seed)
    d = layered_random(layers, width, weight, rng)
    validate_dag(d)
    assert 1 <= d.span <= d.work
    # out-degree <= 2 by construction
    assert (d.child2 == -1).sum() >= 0  # trivially true; validate_dag covers it
