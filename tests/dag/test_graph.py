"""Tests for repro.dag.graph — DagJob structure and work/span math."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag.graph import NO_CHILD, DagJob


def diamond() -> DagJob:
    """0 -> {1, 2} -> 3 with weights 1, 2, 5, 1."""
    return DagJob(
        weights=np.array([1, 2, 5, 1]),
        child1=np.array([1, 3, 3, NO_CHILD]),
        child2=np.array([2, NO_CHILD, NO_CHILD, NO_CHILD]),
        name="diamond",
    )


class TestConstruction:
    def test_single_node(self):
        d = DagJob(weights=[3], child1=[NO_CHILD], child2=[NO_CHILD])
        assert d.n_nodes == 1
        assert d.work == 3
        assert d.span == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DagJob(weights=[], child1=[], child2=[])

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            DagJob(weights=[0], child1=[NO_CHILD], child2=[NO_CHILD])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DagJob(weights=[1, 1], child1=[NO_CHILD], child2=[NO_CHILD])

    def test_arrays_coerced_to_int64(self):
        d = diamond()
        assert d.weights.dtype == np.int64
        assert d.child1.dtype == np.int64


class TestWorkSpan:
    def test_diamond_work(self):
        assert diamond().work == 9

    def test_diamond_span(self):
        # longest path: 0 -> 2 -> 3 = 1 + 5 + 1
        assert diamond().span == 7

    def test_chain_span_equals_work(self):
        d = DagJob(
            weights=[2, 3, 4],
            child1=[1, 2, NO_CHILD],
            child2=[NO_CHILD] * 3,
        )
        assert d.span == d.work == 9

    def test_parallel_nodes_span_is_max(self):
        d = DagJob(
            weights=[4, 7],
            child1=[NO_CHILD, NO_CHILD],
            child2=[NO_CHILD, NO_CHILD],
        )
        assert d.work == 11
        assert d.span == 7


class TestStructureQueries:
    def test_in_degrees(self):
        np.testing.assert_array_equal(diamond().in_degrees(), [0, 1, 1, 2])

    def test_sources(self):
        np.testing.assert_array_equal(diamond().sources(), [0])

    def test_children_of(self):
        d = diamond()
        assert d.children_of(0) == (1, 2)
        assert d.children_of(1) == (3,)
        assert d.children_of(3) == ()

    def test_edges(self):
        assert sorted(diamond().edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_node_depths(self):
        d = diamond()
        # depth = heaviest path ending at node, inclusive
        np.testing.assert_array_equal(d.node_depths(), [1, 3, 6, 7])

    def test_depths_max_equals_span(self):
        d = diamond()
        assert int(d.node_depths().max()) == d.span
