"""Cross-validate DAG computations against networkx as an oracle."""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.generators import chain, fork_join, layered_random, spawn_tree


def to_networkx(dag) -> nx.DiGraph:
    g = nx.DiGraph()
    for u in range(dag.n_nodes):
        g.add_node(u, weight=int(dag.weights[u]))
    for u, v in dag.edges():
        g.add_edge(u, v)
    return g


def nx_span(dag) -> int:
    """Critical path via networkx: heaviest path in node weights."""
    g = to_networkx(dag)
    best = 0
    # DP over topological order using node weights
    dist = {u: int(dag.weights[u]) for u in g.nodes}
    for u in nx.topological_sort(g):
        for v in g.successors(u):
            cand = dist[u] + int(dag.weights[v])
            if cand > dist[v]:
                dist[v] = cand
        best = max(best, dist[u])
    return best


@settings(max_examples=40, deadline=None)
@given(
    kind=st.integers(0, 3),
    a=st.integers(1, 6),
    b=st.integers(1, 8),
    c=st.integers(1, 12),
    seed=st.integers(0, 1000),
)
def test_span_matches_networkx(kind, a, b, c, seed):
    rng = np.random.default_rng(seed)
    if kind == 0:
        dag = chain(a * b * c, granularity=a)
    elif kind == 1:
        dag = spawn_tree(min(a, 5), b, 1)
    elif kind == 2:
        dag = fork_join(min(a, 4), b, c)
    else:
        dag = layered_random(min(a, 6), b, c, rng)
    assert dag.span == nx_span(dag)


@settings(max_examples=30, deadline=None)
@given(
    layers=st.integers(1, 6),
    width=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_generated_dags_acyclic_per_networkx(layers, width, seed):
    rng = np.random.default_rng(seed)
    dag = layered_random(layers, width, 4, rng)
    g = to_networkx(dag)
    assert nx.is_directed_acyclic_graph(g)
    # single weakly connected component (the job is one program)
    assert nx.number_weakly_connected_components(g) == 1


@settings(max_examples=30, deadline=None)
@given(depth=st.integers(0, 5), leaf=st.integers(1, 20))
def test_spawn_tree_work_matches_networkx_sum(depth, leaf):
    dag = spawn_tree(depth, leaf)
    g = to_networkx(dag)
    assert dag.work == sum(d["weight"] for _, d in g.nodes(data=True))
