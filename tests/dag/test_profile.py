"""Tests for repro.dag.profile — parallelism profiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.generators import chain, fork_join, layered_random, spawn_tree, wide
from repro.dag.profile import ParallelismProfile


class TestConstruction:
    def test_constant(self):
        p = ParallelismProfile.constant(work=10.0, parallelism=4.0)
        assert p.total_work == 10.0
        assert p.cap_at(0.0) == 4.0
        assert p.cap_at(9.9) == 4.0
        assert p.span == pytest.approx(2.5)

    def test_invalid_breaks(self):
        with pytest.raises(ValueError):
            ParallelismProfile(np.array([1.0, 2.0]), np.array([1.0]))  # no 0 start
        with pytest.raises(ValueError):
            ParallelismProfile(np.array([0.0, 2.0, 2.0]), np.array([1.0, 1.0]))

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            ParallelismProfile(np.array([0.0, 1.0]), np.array([0.5]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ParallelismProfile(np.array([0.0, 1.0, 2.0]), np.array([1.0]))

    def test_constant_invalid_work(self):
        with pytest.raises(ValueError):
            ParallelismProfile.constant(0.0, 1.0)


class TestFromDag:
    def test_chain_profile_flat_one(self):
        p = ParallelismProfile.from_dag(chain(25, 5))
        assert p.parallelism.tolist() == [1.0]
        assert p.total_work == 25
        assert p.span == 25

    def test_work_and_span_match_dag(self):
        for dag in (spawn_tree(3, 7), fork_join(2, 5, 9), wide(8, 11)):
            p = ParallelismProfile.from_dag(dag)
            assert p.total_work == dag.work
            assert p.span == dag.span
            assert p.average_parallelism == pytest.approx(dag.work / dag.span)

    def test_spawn_tree_ramps_up_and_down(self):
        p = ParallelismProfile.from_dag(spawn_tree(3, 50))
        assert p.cap_at(0.0) == 1.0  # single root strand
        assert p.parallelism.max() == 8.0  # 8 leaves
        assert p.parallelism[-1] == 1.0  # final sync strand

    def test_wide_exposes_width(self):
        p = ParallelismProfile.from_dag(wide(16, 20))
        assert p.parallelism.max() >= 16


class TestCapLookup:
    def test_cap_progression(self):
        p = ParallelismProfile(np.array([0.0, 2.0, 6.0]), np.array([1.0, 4.0]))
        assert p.cap_at(0.0) == 1.0
        assert p.cap_at(1.999) == 1.0
        assert p.cap_at(2.0) == 4.0
        assert p.cap_at(5.9) == 4.0
        assert p.cap_at(6.0) == 4.0  # past end: last segment

    def test_cap_with_tolerance(self):
        p = ParallelismProfile(np.array([0.0, 2.0, 6.0]), np.array([1.0, 4.0]))
        # a hair below the break, tol counts it as crossed
        assert p.cap_at(2.0 - 1e-12, tol=1e-9) == 4.0
        assert p.cap_at(2.0 - 1e-6, tol=1e-9) == 1.0

    def test_negative_attained_rejected(self):
        p = ParallelismProfile.constant(1.0, 1.0)
        with pytest.raises(ValueError):
            p.cap_at(-0.5)

    def test_next_break(self):
        p = ParallelismProfile(np.array([0.0, 2.0, 6.0]), np.array([1.0, 4.0]))
        assert p.next_break_after(0.0) == 2.0
        assert p.next_break_after(2.0) is None  # last segment
        assert p.next_break_after(5.0) is None

    def test_next_break_respects_tol(self):
        p = ParallelismProfile(np.array([0.0, 2.0, 6.0]), np.array([1.0, 4.0]))
        assert p.next_break_after(2.0 - 1e-12, tol=1e-9) is None

    def test_next_break_skips_same_cap_boundary(self):
        p = ParallelismProfile(
            np.array([0.0, 2.0, 4.0, 6.0]), np.array([1.0, 1.0, 3.0])
        )
        # the 2.0 boundary does not change the cap; first real change is 4.0
        assert p.next_break_after(0.0) == 4.0


@settings(max_examples=40, deadline=None)
@given(
    kind=st.integers(0, 3),
    a=st.integers(1, 5),
    b=st.integers(1, 8),
    seed=st.integers(0, 500),
)
def test_profile_invariants_random_dags(kind, a, b, seed):
    rng = np.random.default_rng(seed)
    if kind == 0:
        dag = chain(a * b, granularity=a)
    elif kind == 1:
        dag = spawn_tree(a, b)
    elif kind == 2:
        dag = fork_join(a, b, 3)
    else:
        dag = layered_random(a, b, 4, rng)
    p = ParallelismProfile.from_dag(dag)
    assert p.total_work == dag.work
    assert p.span == dag.span
    assert (p.parallelism >= 1).all()
    # walking the breaks visits strictly increasing work levels
    level, guard = 0.0, 0
    while True:
        nxt = p.next_break_after(level)
        if nxt is None:
            break
        assert nxt > level
        level = nxt
        guard += 1
        assert guard < p.parallelism.size + 1
