"""Tests for repro.dag.validate — each invariant violation is caught."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag.graph import NO_CHILD, DagJob
from repro.dag.validate import DagValidationError, validate_dag


def dag(weights, child1, child2):
    return DagJob(
        weights=np.array(weights),
        child1=np.array(child1),
        child2=np.array(child2),
    )


class TestValidateDag:
    def test_accepts_single_node(self):
        validate_dag(dag([1], [NO_CHILD], [NO_CHILD]))

    def test_accepts_chain(self):
        validate_dag(dag([1, 1], [1, NO_CHILD], [NO_CHILD, NO_CHILD]))

    def test_out_of_range_child(self):
        with pytest.raises(DagValidationError, match="out-of-range"):
            validate_dag(dag([1, 1], [5, NO_CHILD], [NO_CHILD, NO_CHILD]))

    def test_negative_child_index(self):
        with pytest.raises(DagValidationError, match="out-of-range"):
            validate_dag(dag([1, 1], [-3, NO_CHILD], [NO_CHILD, NO_CHILD]))

    def test_backward_edge(self):
        with pytest.raises(DagValidationError, match="non-forward"):
            validate_dag(dag([1, 1], [NO_CHILD, 0], [NO_CHILD, NO_CHILD]))

    def test_self_loop(self):
        with pytest.raises(DagValidationError, match="non-forward"):
            validate_dag(dag([1, 1], [0, NO_CHILD], [NO_CHILD, NO_CHILD]))

    def test_child2_without_child1(self):
        with pytest.raises(DagValidationError, match="child2 set"):
            validate_dag(dag([1, 1], [NO_CHILD, NO_CHILD], [1, NO_CHILD]))

    def test_duplicate_edge(self):
        with pytest.raises(DagValidationError, match="duplicate"):
            validate_dag(dag([1, 1], [1, NO_CHILD], [1, NO_CHILD]))

    def test_fully_disconnected_multinode(self):
        with pytest.raises(DagValidationError, match="no edges"):
            validate_dag(dag([1, 1], [NO_CHILD] * 2, [NO_CHILD] * 2))

    def test_two_sources_one_sink_ok(self):
        # multiple sources are allowed as long as edges exist
        validate_dag(dag([1, 1, 1], [2, 2, NO_CHILD], [NO_CHILD] * 3))
