"""Regenerate the golden equivalence fixtures for both simulator engines.

The goldens pin the *exact* trajectory of every policy/scheduler on fixed
seeded traces — per-job flow times at full float precision, all
practicality counters, event counts and (where a policy draws randomness)
a digest of the final RNG state.  The optimized hot paths introduced in
PR 2 must reproduce these bit-for-bit; ``tests/flowsim/test_golden.py``
and ``tests/wsim/test_golden.py`` enforce it.

Regenerate (only when a deliberate semantic change is made, never to
"fix" a perf regression)::

    PYTHONPATH=src python tests/data/gen_goldens.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.experiments import scale_trace
from repro.core.job import ParallelismMode
from repro.flowsim.engine import FlowSimConfig, FlowStepper
from repro.flowsim.policies import policy_by_name
from repro.workloads.traces import attach_dags, generate_trace
from repro.wsim.runtime import WsConfig, WsRuntime
from repro.wsim.schedulers import ws_scheduler_by_name

DATA_DIR = Path(__file__).resolve().parent

FLOW_SEQ_POLICIES = [
    "srpt",
    "sjf",
    "rr",
    "fifo",
    "laps",
    "mlf",
    "setf",
    "random-np",
    "drep",
    "hdf",
    "wsrpt",
    "wdrep",
]
FLOW_PAR_POLICIES = ["srpt", "swf", "rr", "laps", "drep-par"]

WS_SCHEDULERS = ["drep", "steal-first", "admit-first", "swf", "rr"]


def _rng_digest(rng) -> str:
    """Stable digest of a Generator's bit-generator state."""
    state = json.dumps(rng.bit_generator.state, sort_keys=True, default=str)
    return hashlib.sha256(state.encode()).hexdigest()[:16]


def flow_seq_trace():
    return generate_trace(200, "finance", 0.7, 4, seed=42)


def flow_par_trace():
    return generate_trace(
        200, "bing", 0.7, 4, mode=ParallelismMode.FULLY_PARALLEL, seed=43
    )


def flow_profiled_trace():
    base = generate_trace(
        40,
        "finance",
        0.6,
        4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=44,
        scale_work_with_m=False,
    )
    return attach_dags(scale_trace(base, 100.0), parallelism=8, seed=44)


def run_flow_case(trace, m, policy_name, seed, config=FlowSimConfig()):
    policy = policy_by_name(policy_name)
    stepper = FlowStepper(m, policy, seed=seed, config=config)
    for spec in trace.jobs:
        stepper.add_job(spec)
    stepper.drain()
    result = stepper.result()
    record = {
        "flow_times": [float(x) for x in result.flow_times],
        "preemptions": int(result.preemptions),
        "migrations": int(result.migrations),
        "makespan": float(result.makespan),
        "events": int(result.extra["events"]),
        "switches": int(result.extra["switches"]),
        "utilization": float(result.extra["utilization"]),
    }
    rng = getattr(policy, "_rng", None)
    if rng is not None:
        record["rng_digest"] = _rng_digest(rng)
    return record


def ws_trace(n=60, m=4, parallelism=8, scale=50.0, seed=45):
    base = generate_trace(
        n,
        "finance",
        0.6,
        m,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=seed,
        scale_work_with_m=False,
    )
    return attach_dags(scale_trace(base, scale), parallelism=parallelism, seed=seed)


def run_ws_case(trace, m, scheduler_name, seed, config=WsConfig(), speeds=None):
    rt = WsRuntime(
        trace,
        m,
        ws_scheduler_by_name(scheduler_name),
        seed=seed,
        config=config,
        speeds=speeds,
    )
    result = rt.run()
    c = rt.counters
    return {
        "flow_times": [float(x) for x in result.flow_times],
        "makespan": float(result.makespan),
        "work_steps": float(c.work_steps),
        "steal_attempts": int(c.steal_attempts),
        "failed_steals": int(c.failed_steals),
        "muggings": int(c.muggings),
        "preemptions": int(c.preemptions),
        "switches": int(c.switches),
        "admissions": int(c.admissions),
        "idle_steps": int(c.idle_steps),
        "overhead_steps": int(c.overhead_steps),
        "node_migrations": int(c.node_migrations),
        "rng_digest": _rng_digest(rt.rng),
    }


def ws_grid_cells():
    """The pinned fig-3 style grid (policy × m × load), workers-invariant."""
    from repro.analysis.pool import ws_sweep_cells

    return ws_sweep_cells(
        distribution="finance",
        loads=[0.5, 0.7],
        m_values=[2, 4],
        n_jobs=40,
        seed=11,
        mean_work_units=50,
        replicates=2,
    )


def main() -> None:
    flow: dict[str, dict] = {}
    seq = flow_seq_trace()
    par = flow_par_trace()
    for name in FLOW_SEQ_POLICIES:
        flow[f"seq/{name}"] = run_flow_case(seq, 4, name, seed=7)
    for name in FLOW_PAR_POLICIES:
        flow[f"par/{name}"] = run_flow_case(par, 4, name, seed=7)
    flow["seq/drep/speed2"] = run_flow_case(
        seq, 4, "drep", seed=7, config=FlowSimConfig(speed=2.0)
    )
    flow["profiled/srpt"] = run_flow_case(
        flow_profiled_trace(),
        4,
        "srpt",
        seed=7,
        config=FlowSimConfig(use_profiles=True),
    )
    (DATA_DIR / "golden_flowsim.json").write_text(
        json.dumps(flow, indent=1, sort_keys=True)
    )
    print(f"golden_flowsim.json: {len(flow)} cases")

    ws: dict[str, dict] = {}
    trace = ws_trace()
    for name in WS_SCHEDULERS:
        ws[f"{name}"] = run_ws_case(trace, 4, name, seed=9)
    for mode in ("node", "step"):
        ws[f"drep/check={mode}"] = run_ws_case(
            trace, 4, "drep", seed=9, config=WsConfig(preempt_check=mode)
        )
    ws["drep/overhead=2"] = run_ws_case(
        trace, 4, "drep", seed=9, config=WsConfig(preemption_overhead=2)
    )
    import numpy as np

    ws["drep/hetero"] = run_ws_case(
        trace, 4, "drep", seed=9, speeds=np.array([2.0, 1.0, 1.0, 0.5])
    )
    (DATA_DIR / "golden_wsim.json").write_text(
        json.dumps(ws, indent=1, sort_keys=True)
    )
    print(f"golden_wsim.json: {len(ws)} cases")

    from repro.analysis.pool import run_ws_grid

    rows = run_ws_grid(ws_grid_cells(), workers=1)
    (DATA_DIR / "golden_ws_grid.json").write_text(
        json.dumps(rows, indent=1, sort_keys=True)
    )
    print(f"golden_ws_grid.json: {len(rows)} rows")


if __name__ == "__main__":
    main()
