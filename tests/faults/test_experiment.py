"""Resilience experiment: shape, determinism and the report schema."""

from __future__ import annotations

import pytest

from repro.faults.experiment import (
    resilience_report,
    run_resilience_experiment,
)

PARAMS = dict(
    m=4,
    n_jobs=50,
    distribution="finance",
    load=0.7,
    policies=("drep", "srpt", "rr"),
    plans=("rolling", "half-down"),
    seed=2,
)


@pytest.fixture(scope="module")
def rows():
    return run_resilience_experiment(**PARAMS)


class TestExperiment:
    def test_full_policy_plan_grid(self, rows):
        pairs = {(r["policy"], r["plan"]) for r in rows}
        assert pairs == {
            (p, f) for p in PARAMS["policies"] for f in PARAMS["plans"]
        }

    def test_every_crash_actually_landed(self, rows):
        for r in rows:
            assert r["faults_applied"] > 0, r

    def test_degradation_ratios_are_ratios(self, rows):
        for r in rows:
            assert r["flow_degradation"] == pytest.approx(
                r["mean_flow"] / r["baseline_mean_flow"]
            )
            # crashes cannot make a work-conserving schedule faster on
            # average by much; allow tiny improvements from reshuffles
            assert r["flow_degradation"] > 0.9

    def test_deterministic_across_invocations(self, rows):
        assert rows == run_resilience_experiment(**PARAMS)

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            run_resilience_experiment(
                m=2, n_jobs=5, plans=("no-such-plan",), seed=0
            )


class TestReport:
    def test_report_schema(self, rows):
        rep = resilience_report(
            rows, m=4, n_jobs=50, distribution="finance", load=0.7, seed=2
        )
        assert rep["schema"] == "resilience/1"
        assert rep["params"]["m"] == 4
        assert set(rep["summary"]) == set(PARAMS["plans"])
        for plan_summary in rep["summary"].values():
            assert set(plan_summary["policies"]) == set(PARAMS["policies"])
            assert plan_summary["worst_flow_degradation"] >= max(
                0.9, min(plan_summary["policies"].values())
            )

    def test_report_is_json_serializable(self, rows):
        import json

        rep = resilience_report(
            rows, m=4, n_jobs=50, distribution="finance", load=0.7, seed=2
        )
        assert json.loads(json.dumps(rep)) == rep
