"""Fault injection composed with the SoA kernel and the pool runner.

Faults exercise the engine paths the vectorized hot loop had to keep
intact — mid-run capacity changes, job aborts (active-set removal), and
resume re-insertion — so every plan kind is run through both the SoA
path and the legacy object path and must agree exactly.  The pool side
checks that `FaultPlan`s survive per-cell pickling: a resilience grid
must produce the same rows whether the plans ride to a worker process
or never leave the parent.
"""

from __future__ import annotations

import pytest

from repro.faults.experiment import run_resilience_experiment
from repro.faults.plan import named_fault_plans
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import policy_by_name
from repro.workloads.traces import generate_trace

OBJECT_PATH = FlowSimConfig(use_rates_array=False)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(120, "finance", 0.7, 4, seed=17)


@pytest.fixture(scope="module")
def plans(trace):
    baseline = simulate(trace, 4, policy_by_name("srpt"), seed=17)
    return named_fault_plans(4, baseline.makespan, seed=17)


def _record(result) -> dict:
    return {
        "flows": result.flow_times.tolist(),
        "events": result.extra["events"],
        "switches": result.extra["switches"],
        "faults": dict(result.extra.get("faults", {})),
    }


class TestSoaPathUnderFaults:
    @pytest.mark.parametrize("plan_name", ["rolling", "half-down", "random"])
    @pytest.mark.parametrize("policy", ["srpt", "rr", "drep"])
    def test_soa_equals_object_path(self, trace, plans, plan_name, policy):
        plan = plans[plan_name]
        soa = simulate(
            trace, 4, policy_by_name(policy), seed=17, faults=plan
        )
        obj = simulate(
            trace, 4, policy_by_name(policy), seed=17, faults=plan,
            config=OBJECT_PATH,
        )
        assert _record(soa) == _record(obj)

    def test_faults_actually_fired(self, trace, plans):
        result = simulate(
            trace, 4, policy_by_name("srpt"), seed=17, faults=plans["rolling"]
        )
        assert result.extra["faults"]["applied"] > 0


class TestResilienceThroughPool:
    PARAMS = dict(m=4, n_jobs=60, seed=4, plans=("rolling", "random"))

    def test_workers_2_equals_workers_1(self):
        serial = run_resilience_experiment(workers=1, **self.PARAMS)
        pooled = run_resilience_experiment(workers=2, **self.PARAMS)
        assert serial == pooled

    def test_explicit_plan_mapping_through_pool(self, trace, plans):
        """Caller-supplied FaultPlan objects must pickle into workers too."""
        picked = {"rolling": plans["rolling"]}
        serial = run_resilience_experiment(
            m=4, n_jobs=60, seed=4, plans=picked, workers=1
        )
        pooled = run_resilience_experiment(
            m=4, n_jobs=60, seed=4, plans=picked, workers=3
        )
        assert serial == pooled
        assert {r["plan"] for r in serial} == {"rolling"}
