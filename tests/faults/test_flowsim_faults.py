"""Fault injection in the event-exact flow simulator.

The acceptance bar is *deterministic fault replay*: the same seed and
FaultPlan must produce bit-identical flow times and fault logs across
runs, for every policy family the engine supports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultPlan, named_fault_plans
from repro.flowsim.engine import FlowSimConfig, FlowStepper, simulate
from repro.flowsim.policies import policy_by_name
from repro.workloads.traces import generate_trace

POLICIES = ["drep-seq", "drep-par", "srpt", "rr"]
PLANS = ["rolling", "half-down", "brownout", "random"]


def _trace(m=4, n=60, seed=3):
    return generate_trace(n, "finance", 0.7, m, seed=seed)


class TestDeterministicReplay:
    @pytest.mark.parametrize("policy_key", POLICIES)
    @pytest.mark.parametrize("plan_name", PLANS)
    def test_bit_identical_across_runs(self, policy_key, plan_name):
        trace = _trace()
        plan = named_fault_plans(4, 60.0, seed=9)[plan_name]
        runs = [
            simulate(trace, 4, policy_by_name(policy_key), seed=11, faults=plan)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(
            runs[0].flow_times, runs[1].flow_times
        )
        assert runs[0].extra["faults"]["log"] == runs[1].extra["faults"]["log"]
        assert runs[0].extra["faults"]["applied"] > 0

    def test_no_fault_run_identical_to_faults_none(self):
        # an empty plan must not perturb the golden trajectory at all
        trace = _trace()
        empty = FaultPlan((), name="empty")
        base = simulate(trace, 4, policy_by_name("drep"), seed=11)
        wired = simulate(trace, 4, policy_by_name("drep"), seed=11, faults=empty)
        np.testing.assert_array_equal(base.flow_times, wired.flow_times)
        assert base.preemptions == wired.preemptions


class TestCrashSemantics:
    def test_all_processors_down_pauses_progress(self):
        trace = _trace(m=2, n=10)
        outage = FaultPlan(
            (
                FaultEvent("crash", t=0.5, duration=5.0, proc=0),
                FaultEvent("crash", t=0.5, duration=5.0, proc=1),
            ),
            name="blackout",
        )
        base = simulate(trace, 2, policy_by_name("srpt"), seed=0)
        dark = simulate(trace, 2, policy_by_name("srpt"), seed=0, faults=outage)
        assert dark.mean_flow > base.mean_flow
        # nothing can finish while every processor is down
        releases = np.array([j.release for j in trace.jobs])
        finishes = releases + dark.flow_times
        assert not np.any((finishes > 0.5 + 1e-9) & (finishes < 5.5 - 1e-9))
        base_finishes = releases + base.flow_times
        assert np.any((base_finishes > 0.5) & (base_finishes < 5.5))

    def test_degrade_slows_completion(self):
        trace = _trace(m=2, n=20)
        plan = FaultPlan(
            (FaultEvent("degrade", t=0.0, duration=1e9, factor=0.5),),
            name="half-speed",
        )
        base = simulate(trace, 2, policy_by_name("srpt"), seed=0)
        slow = simulate(trace, 2, policy_by_name("srpt"), seed=0, faults=plan)
        assert slow.mean_flow > base.mean_flow

    def test_drep_survives_crashes_with_checks_every_event(self):
        trace = _trace(m=4, n=40)
        plan = named_fault_plans(4, 40.0, seed=2)["rolling"]
        result = simulate(
            trace,
            4,
            policy_by_name("drep"),
            seed=5,
            config=FlowSimConfig(check_every_k=1),
            faults=plan,
        )
        assert result.n_jobs == 40
        assert np.all(result.flow_times > 0)


class TestAbortResubmit:
    def test_abort_extends_flow_from_original_release(self):
        # one job, aborted halfway, resubmitted 2.0 later: the flow time
        # must count from the ORIGINAL release, so it includes the wasted
        # first attempt and the resubmit gap
        from repro.core.job import JobSpec
        from repro.workloads.traces import Trace

        spec = JobSpec(job_id=0, release=0.0, work=4.0, span=4.0)
        trace = Trace(jobs=[spec], m=1, load=0.5, distribution="unit")
        plan = FaultPlan(
            (FaultEvent("abort", t=2.0, job_id=0, resubmit_after=2.0),),
            name="abort-one",
        )
        base = simulate(trace, 1, policy_by_name("srpt"), seed=0)
        hit = simulate(trace, 1, policy_by_name("srpt"), seed=0, faults=plan)
        assert base.flow_times[0] == pytest.approx(4.0)
        # aborted at 2 (2 units lost), resumes at 4, full 4 units again
        assert hit.flow_times[0] == pytest.approx(8.0)
        assert hit.extra["faults"]["lost_work"] == pytest.approx(2.0)

    def test_abort_of_finished_job_is_ignored(self):
        from repro.core.job import JobSpec
        from repro.workloads.traces import Trace

        jobs = [
            JobSpec(job_id=0, release=0.0, work=1.0, span=1.0),
            # keeps the engine alive past the abort point
            JobSpec(job_id=1, release=6.0, work=1.0, span=1.0),
        ]
        trace = Trace(jobs=jobs, m=1, load=0.5, distribution="unit")
        plan = FaultPlan(
            (FaultEvent("abort", t=5.0, job_id=0, resubmit_after=1.0),),
            name="late",
        )
        r = simulate(trace, 1, policy_by_name("srpt"), seed=0, faults=plan)
        assert r.flow_times[0] == pytest.approx(1.0)
        log = r.extra["faults"]["log"]
        aborts = [e for e in log if e["kind"] == "abort"]
        assert aborts and not aborts[0]["applied"]


class TestSnapshotWithFaults:
    """Satellite: snapshot/restore round-trips RNG + fault state mid-plan."""

    @pytest.mark.parametrize("policy_key", ["drep-seq", "drep-par", "srpt"])
    def test_state_roundtrip_after_faults_fired(self, policy_key):
        import json

        from repro.serve.snapshot import _decode_policy, _encode_policy

        trace = _trace(m=4, n=50)
        plan = named_fault_plans(4, 50.0, seed=7)["rolling"]

        ref = simulate(trace, 4, policy_by_name(policy_key), seed=3, faults=plan)

        stepper = FlowStepper(4, policy_by_name(policy_key), seed=3, faults=plan)
        for spec in trace.jobs:
            stepper.advance_to(spec.release)
            stepper.add_job(spec)
        # run into the middle of the fault plan, then checkpoint through
        # the same JSON codec the serving snapshots use (RNG + policy +
        # fault timeline state all round-trip)
        stepper.advance_to(plan.events[2].t + 0.1)
        assert stepper.faults.applied > 0
        blob = json.dumps(
            {
                "engine": stepper.state_dict(),
                "policy": _encode_policy(stepper.policy),
            }
        )
        decoded = json.loads(blob)
        clone = FlowStepper.from_state_dict(
            decoded["engine"], _decode_policy(decoded["policy"])
        )
        stepper.drain()
        clone.drain()
        np.testing.assert_array_equal(
            stepper.result().flow_times, clone.result().flow_times
        )
        np.testing.assert_array_equal(
            ref.flow_times, clone.result().flow_times
        )
        assert stepper._fault_log == clone._fault_log
