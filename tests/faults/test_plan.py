"""FaultEvent/FaultPlan: validation, serialization, compiled agendas."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultEvent,
    FaultPlan,
    FaultTimeline,
    named_fault_plans,
    random_crash_plan,
    step_agenda,
)


class TestFaultEvent:
    def test_crash_requires_proc(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", t=1.0, duration=2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", t=-1.0, duration=2.0, proc=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", t=1.0, duration=2.0, proc=0)

    def test_abort_requires_job(self):
        with pytest.raises(ValueError):
            FaultEvent("abort", t=1.0)

    def test_end_and_roundtrip(self):
        ev = FaultEvent("crash", t=2.0, duration=3.0, proc=1)
        assert ev.end == pytest.approx(5.0)
        assert FaultEvent.from_dict(ev.to_dict()) == ev


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = named_fault_plans(4, 100.0, seed=3)["rolling"]
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.horizon == plan.horizon

    def test_validate_for_rejects_out_of_range_proc(self):
        plan = FaultPlan(
            (FaultEvent("crash", t=1.0, duration=1.0, proc=7),), name="bad"
        )
        plan.validate_for(8)
        with pytest.raises(ValueError):
            plan.validate_for(4)

    def test_named_plans_cover_the_advertised_shapes(self):
        plans = named_fault_plans(4, 100.0, seed=0)
        assert set(plans) == {"rolling", "half-down", "brownout", "random"}
        assert plans["rolling"].kinds() == {"crash"}
        assert plans["half-down"].kinds() == {"crash"}
        assert "degrade" in plans["brownout"].kinds()

    def test_random_crash_plan_is_seed_deterministic(self):
        a = random_crash_plan(8, 200.0, seed=5, crash_rate=0.05, mttr=10.0)
        b = random_crash_plan(8, 200.0, seed=5, crash_rate=0.05, mttr=10.0)
        c = random_crash_plan(8, 200.0, seed=6, crash_rate=0.05, mttr=10.0)
        assert a == b
        assert a != c


class TestTimeline:
    def test_point_ordering_and_state(self):
        plan = FaultPlan(
            (
                FaultEvent("crash", t=1.0, duration=2.0, proc=0),
                FaultEvent("crash", t=2.0, duration=2.0, proc=1),
            ),
            name="two",
        )
        tl = FaultTimeline(plan, m=4)
        assert tl.next_time() == pytest.approx(1.0)
        tl.pop_due(1.0)
        assert tl.down_procs() == frozenset({0})
        assert tl.m_eff() == 3
        tl.pop_due(2.0)
        assert tl.down_procs() == frozenset({0, 1})
        tl.pop_due(3.0)
        assert tl.down_procs() == frozenset({1})
        tl.pop_due(4.0)
        assert tl.down_procs() == frozenset()
        assert tl.next_time() is None

    def test_timeline_state_roundtrip(self):
        plan = named_fault_plans(4, 50.0, seed=1)["rolling"]
        tl = FaultTimeline(plan, m=4)
        tl.pop_due(plan.events[0].t)
        clone = FaultTimeline.from_state_dict(tl.state_dict())
        assert clone.down_procs() == tl.down_procs()
        assert clone.next_time() == tl.next_time()
        assert clone.applied == tl.applied


class TestStepAgenda:
    def test_crash_outage_spans_at_least_one_step(self):
        plan = FaultPlan(
            (FaultEvent("crash", t=3.2, duration=0.1, proc=0),), name="blip"
        )
        agenda = step_agenda(plan)
        kinds = [(s, a["kind"]) for s, _, a in agenda]
        down = [s for s, k in kinds if k == "crash"][0]
        up = [s for s, k in kinds if k == "recover"][0]
        assert up >= down + 1

    def test_degrade_rejected_for_wsim(self):
        plan = FaultPlan(
            (FaultEvent("degrade", t=1.0, duration=2.0, factor=0.5),),
            name="brown",
        )
        with pytest.raises(ValueError, match="crash/abort"):
            step_agenda(plan)
