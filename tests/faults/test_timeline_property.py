"""Property tests: FaultTimeline state_dict round-trips mid-window.

The serve tier snapshots a live timeline at arbitrary moments — including
inside an active degrade/straggle interval and with displaced jobs
waiting on the resume queue.  These tests drive a random plan to a random
cut point, checkpoint, and require the restored timeline to be
indistinguishable from the original from that moment on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.timeline import FaultTimeline

M = 4

times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
durations = st.floats(min_value=0.5, max_value=50.0, allow_nan=False)
factors = st.floats(
    min_value=0.1, max_value=1.0, allow_nan=False, exclude_min=False
)


@st.composite
def fault_events(draw):
    kind = draw(st.sampled_from(["crash", "degrade", "straggle", "abort"]))
    t = draw(times)
    if kind == "crash":
        return FaultEvent("crash", t=t, duration=draw(durations), proc=draw(st.integers(0, M - 1)))
    if kind == "degrade":
        return FaultEvent("degrade", t=t, duration=draw(durations), factor=draw(factors))
    if kind == "straggle":
        return FaultEvent(
            "straggle",
            t=t,
            duration=draw(durations),
            proc=draw(st.integers(0, M - 1)),
            factor=draw(factors),
        )
    return FaultEvent(
        "abort",
        t=t,
        job_id=draw(st.integers(0, 9)),
        resubmit_after=draw(st.floats(0.0, 20.0, allow_nan=False)),
    )


plans = st.lists(fault_events(), min_size=1, max_size=12).map(
    lambda evs: FaultPlan(tuple(evs), name="prop")
)


def drain(tl: FaultTimeline) -> list[dict]:
    """Pop everything left on the agenda, recording the applied actions."""
    out = []
    while tl.next_time() is not None:
        out.extend(tl.pop_due(tl.next_time()))
    return out


@given(plan=plans, frac=st.floats(0.0, 1.0, allow_nan=False), data=st.data())
@settings(max_examples=150, deadline=None)
def test_mid_run_round_trip_is_exact(plan, frac, data):
    tl = FaultTimeline(plan, M)
    t_cut = frac * plan.horizon
    tl.pop_due(t_cut)

    # displaced jobs waiting to re-enter: the resume queue must survive
    n_resumes = data.draw(st.integers(0, 3))
    for k in range(n_resumes):
        tl.push_resume(t_cut + 1.0 + k, job_id=100 + k)
    # plus a dynamically pushed controller action (counts toward n_points)
    if data.draw(st.booleans()):
        tl.push_action(t_cut + 0.5, {"kind": "crash", "proc": 0})

    state = tl.state_dict()
    clone = FaultTimeline.from_state_dict(state)

    # machine state at the cut is identical — even inside an active
    # degrade/straggle window
    assert clone.m_eff() == tl.m_eff()
    assert clone.down_procs() == tl.down_procs()
    assert clone.speed_factor() == tl.speed_factor()
    assert clone.n_points == tl.n_points
    assert clone.applied == tl.applied
    assert clone.state_dict() == state  # serialization is a fixed point

    # and the two timelines replay the identical future
    assert drain(clone) == drain(tl)
    assert clone.m_eff() == tl.m_eff()
    assert clone.speed_factor() == tl.speed_factor()


@given(plan=plans, frac=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_restored_resume_ordering_matches(plan, frac):
    """Resumes pushed after restore keep the original sequence ordering."""
    tl = FaultTimeline(plan, M)
    t_cut = frac * plan.horizon
    tl.pop_due(t_cut)
    clone = FaultTimeline.from_state_dict(tl.state_dict())
    for target in (tl, clone):
        target.push_resume(t_cut + 2.0, job_id=7)
        target.push_resume(t_cut + 2.0, job_id=8)  # same time: seq breaks tie
    assert drain(clone) == drain(tl)


def test_mid_window_cut_inside_degrade_and_straggle():
    """Deterministic anchor: cut strictly inside both slowdown windows."""
    plan = FaultPlan(
        (
            FaultEvent("degrade", t=1.0, duration=10.0, factor=0.5),
            FaultEvent("straggle", t=2.0, duration=10.0, proc=1, factor=0.25),
            FaultEvent("crash", t=3.0, duration=10.0, proc=2),
        ),
        name="mid",
    )
    tl = FaultTimeline(plan, M)
    tl.pop_due(5.0)  # all three active, none ended
    assert tl.m_eff() == M - 1
    assert tl.speed_factor() < 0.5  # degrade × straggler drag

    clone = FaultTimeline.from_state_dict(tl.state_dict())
    assert clone.m_eff() == tl.m_eff()
    assert clone.speed_factor() == tl.speed_factor()
    assert drain(clone) == drain(tl)
    assert clone.m_eff() == M and clone.speed_factor() == 1.0
