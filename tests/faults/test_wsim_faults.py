"""Fault injection in the discrete work-stealing runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.faults import FaultEvent, FaultPlan, named_fault_plans
from repro.dag.generators import chain
from repro.workloads.traces import Trace, attach_dags, generate_trace
from repro.wsim.runtime import simulate_ws
from repro.wsim.schedulers import ws_scheduler_by_name

SCHEDULERS = ["drep", "steal-first", "admit-first", "central-greedy", "rr"]


def _dag_trace(m=4, n=30, seed=2):
    trace = generate_trace(n, "finance", 0.6, m, seed=seed)
    return attach_dags(trace, 4.0, seed=seed)


class TestDeterministicReplay:
    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_bit_identical_across_runs(self, name):
        trace = _dag_trace()
        plan = named_fault_plans(4, 300.0, seed=4)["rolling"]
        runs = [
            simulate_ws(
                trace, 4, ws_scheduler_by_name(name), seed=8, faults=plan
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0].flow_times, runs[1].flow_times)
        assert runs[0].extra["faults"]["log"] == runs[1].extra["faults"]["log"]
        assert runs[0].extra["faults"]["crashes"] > 0

    def test_brownout_plans_rejected(self):
        trace = _dag_trace(n=5)
        plan = named_fault_plans(4, 100.0, seed=0)["brownout"]
        with pytest.raises(ValueError, match="crash/abort"):
            simulate_ws(
                trace, 4, ws_scheduler_by_name("drep"), seed=0, faults=plan
            )


class TestCrashSemantics:
    def test_crash_probe_counts_lost_partial_work(self):
        # one chain job with 10-unit nodes on 2 workers under DREP: the
        # arrival step is spent switching, execution runs steps 1-3, the
        # crash at step 4 throws those 3 units away and re-executes them
        dag = chain(40, granularity=10)
        spec = JobSpec(
            job_id=0,
            release=0.0,
            work=float(dag.work),
            span=float(dag.span),
            mode=ParallelismMode.DAG,
            dag=dag,
        )
        trace = Trace(jobs=[spec], m=2, load=0.5, distribution="unit")
        plan = FaultPlan(
            (FaultEvent("crash", t=4.0, duration=5.0, proc=0),), name="mid"
        )
        base = simulate_ws(trace, 2, ws_scheduler_by_name("drep"), seed=1)
        hit = simulate_ws(
            trace, 2, ws_scheduler_by_name("drep"), seed=1, faults=plan
        )
        finfo = hit.extra["faults"]
        assert finfo["crashes"] == 1
        assert finfo["lost_work"] == pytest.approx(3.0)
        assert finfo["dead_steps"] >= 5
        assert hit.flow_times[0] > base.flow_times[0]

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_all_jobs_still_complete_under_crashes(self, name):
        trace = _dag_trace(n=20)
        plan = named_fault_plans(4, 400.0, seed=6)["half-down"]
        result = simulate_ws(
            trace, 4, ws_scheduler_by_name(name), seed=3, faults=plan
        )
        assert result.n_jobs == 20
        assert np.all(result.flow_times > 0)

    def test_crash_of_every_worker_then_recovery(self):
        trace = _dag_trace(m=2, n=5)
        plan = FaultPlan(
            (
                FaultEvent("crash", t=2.0, duration=10.0, proc=0),
                FaultEvent("crash", t=2.0, duration=10.0, proc=1),
            ),
            name="blackout",
        )
        result = simulate_ws(
            trace, 2, ws_scheduler_by_name("drep"), seed=0, faults=plan
        )
        assert result.n_jobs == 5
        assert result.extra["faults"]["dead_steps"] >= 20


class TestAbortResubmit:
    def test_abort_purges_and_resubmits(self):
        dag = chain(30, granularity=1)
        spec = JobSpec(
            job_id=0,
            release=0.0,
            work=float(dag.work),
            span=float(dag.span),
            mode=ParallelismMode.DAG,
            dag=dag,
        )
        trace = Trace(jobs=[spec], m=2, load=0.5, distribution="unit")
        plan = FaultPlan(
            (FaultEvent("abort", t=10.0, job_id=0, resubmit_after=5.0),),
            name="abort",
        )
        base = simulate_ws(trace, 2, ws_scheduler_by_name("drep"), seed=0)
        hit = simulate_ws(
            trace, 2, ws_scheduler_by_name("drep"), seed=0, faults=plan
        )
        finfo = hit.extra["faults"]
        assert finfo["aborts"] == 1
        assert finfo["lost_work"] > 0
        # flow is measured from the ORIGINAL release: the abort shows up
        # as pure added latency
        assert hit.flow_times[0] >= base.flow_times[0] + 5
        assert hit.makespan > base.makespan

    @pytest.mark.parametrize("name", ["steal-first", "admit-first"])
    def test_abort_while_queued_purges_admission_queue(self, name):
        # two big jobs on one worker: the second waits in the FIFO queue;
        # aborting it there must not leave a stale reference behind
        dags = [chain(20, granularity=1), chain(20, granularity=1)]
        jobs = [
            JobSpec(
                job_id=i,
                release=0.0,
                work=float(dags[i].work),
                span=float(dags[i].span),
                mode=ParallelismMode.DAG,
                dag=dags[i],
            )
            for i in range(2)
        ]
        trace = Trace(jobs=jobs, m=1, load=0.5, distribution="unit")
        plan = FaultPlan(
            (FaultEvent("abort", t=3.0, job_id=1, resubmit_after=2.0),),
            name="queued-abort",
        )
        result = simulate_ws(
            trace, 1, ws_scheduler_by_name(name), seed=0, faults=plan
        )
        assert result.n_jobs == 2
        assert np.all(result.flow_times > 0)
        assert result.extra["faults"]["aborts"] == 1
