"""Property tests: the completion-horizon batch kernel ≡ per-event steps.

``use_batch_horizon=True`` (the default) lets rates-stable policies fold
whole runs of completions between arrivals into one vectorized pass over
the SoA buffers (``FlowStepper._batched_steps``); ``False`` forces the
classic one-event-at-a-time ``step()`` loop.  These tests generate random
instances with Hypothesis and require the two executions to agree
*exactly* — per-job flow times at full float precision, event/switch
counters, and the policy RNG end-state digest — across policies, check
cadences, fault plans (which disable the kernel entirely), mid-run
``advance_to`` horizons, and both ``use_rates_array`` settings.

The sibling file ``test_soa_equivalence.py`` pins the SoA path to the
object path; this one pins the batched path to the unit-step path.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim.engine import FlowSimConfig, FlowStepper, simulate
from repro.flowsim.policies import policy_by_name
from repro.workloads.traces import Trace, generate_trace

DATA_DIR = Path(__file__).resolve().parents[1] / "data"
_spec = importlib.util.spec_from_file_location(
    "gen_goldens", DATA_DIR / "gen_goldens.py"
)
gen_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_goldens)

#: every policy opting into the kernel (``batch_horizon = True``), by mode
BATCH_POLICIES_SEQ = ["fifo", "sjf", "rr", "laps", "drep", "hdf", "wdrep"]
BATCH_POLICIES_PAR = ["rr", "laps", "drep-par"]

UNIT = FlowSimConfig(use_batch_horizon=False)


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 14))
    m = draw(st.integers(1, 6))
    mode = draw(
        st.sampled_from([ParallelismMode.SEQUENTIAL, ParallelismMode.FULLY_PARALLEL])
    )
    releases = sorted(
        draw(
            st.lists(
                st.floats(0.0, 40.0, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    works = draw(
        st.lists(st.floats(0.1, 15.0, allow_nan=False), min_size=n, max_size=n)
    )
    jobs = []
    for i in range(n):
        w = float(works[i])
        span = w if mode is ParallelismMode.SEQUENTIAL else w / m
        jobs.append(
            JobSpec(job_id=i, release=float(releases[i]), work=w, span=span, mode=mode)
        )
    return Trace(jobs=jobs, m=m), m, mode


@settings(max_examples=60, deadline=None)
@given(
    inst=random_instance(),
    policy_idx=st.integers(0, max(len(BATCH_POLICIES_SEQ), len(BATCH_POLICIES_PAR)) - 1),
    seed=st.integers(0, 20),
)
def test_batched_equals_unit_steps(inst, policy_idx, seed):
    trace, m, mode = inst
    names = (
        BATCH_POLICIES_SEQ
        if mode is ParallelismMode.SEQUENTIAL
        else BATCH_POLICIES_PAR
    )
    policy = names[policy_idx % len(names)]
    batched = gen_goldens.run_flow_case(trace, m, policy, seed=seed)
    unit = gen_goldens.run_flow_case(trace, m, policy, seed=seed, config=UNIT)
    assert batched == unit


@settings(max_examples=25, deadline=None)
@given(inst=random_instance(), k=st.sampled_from([1, 7, 1000]))
def test_batched_equals_unit_under_check_k(inst, k):
    """The kernel must honor the same amortized-check cadence as step()."""
    trace, m, mode = inst
    policy = "drep" if mode is ParallelismMode.SEQUENTIAL else "drep-par"
    batched = gen_goldens.run_flow_case(
        trace, m, policy, seed=5, config=FlowSimConfig(check_every_k=k)
    )
    unit = gen_goldens.run_flow_case(
        trace,
        m,
        policy,
        seed=5,
        config=FlowSimConfig(check_every_k=k, use_batch_horizon=False),
    )
    assert batched == unit


@settings(max_examples=20, deadline=None)
@given(inst=random_instance(), seed=st.integers(0, 10))
def test_batched_equals_unit_on_object_path(inst, seed):
    """Without the vectorized hook the kernel must stand down, not drift.

    ``use_rates_array=False`` removes the ``rates_array`` surface the
    kernel runs on, so both configs take per-event steps — any
    disagreement means the batch flag leaks into unrelated plumbing.
    """
    trace, m, mode = inst
    policy = "drep" if mode is ParallelismMode.SEQUENTIAL else "drep-par"
    batched = gen_goldens.run_flow_case(
        trace, m, policy, seed=seed, config=FlowSimConfig(use_rates_array=False)
    )
    unit = gen_goldens.run_flow_case(
        trace,
        m,
        policy,
        seed=seed,
        config=FlowSimConfig(use_rates_array=False, use_batch_horizon=False),
    )
    assert batched == unit


@settings(max_examples=20, deadline=None)
@given(
    inst=random_instance(),
    horizon=st.floats(0.5, 60.0, allow_nan=False),
    seed=st.integers(0, 10),
)
def test_advance_to_parks_identically(inst, horizon, seed):
    """Mid-run horizon parking: clock, counters and partial flows agree."""
    trace, m, mode = inst
    policy = "drep" if mode is ParallelismMode.SEQUENTIAL else "drep-par"

    def run(config):
        stepper = FlowStepper(m, policy_by_name(policy), seed=seed, config=config)
        stepper.add_jobs(list(trace.jobs))
        stepper.advance_to(horizon)
        mid = (
            stepper.now,
            stepper.n_completed,
            stepper.n_active,
            stepper.events,
        )
        stepper.drain()
        return mid, stepper.result()

    mid_b, res_b = run(FlowSimConfig())
    mid_u, res_u = run(UNIT)
    assert mid_b == mid_u
    assert res_b.flow_times.tolist() == res_u.flow_times.tolist()
    assert res_b.extra["events"] == res_u.extra["events"]


@pytest.mark.parametrize("plan_name", ["rolling", "half-down", "random"])
def test_fault_plans_force_unit_fallback(plan_name):
    """Fault timelines disable the kernel; results still match exactly."""
    from repro.faults import named_fault_plans

    trace = generate_trace(120, "finance", 0.7, 4, seed=17)
    horizon = max(j.release for j in trace.jobs) + 50.0
    batched = simulate(
        trace, 4, policy_by_name("drep"), seed=17,
        faults=named_fault_plans(4, horizon, seed=3)[plan_name],
    )
    unit = simulate(
        trace, 4, policy_by_name("drep"), seed=17, config=UNIT,
        faults=named_fault_plans(4, horizon, seed=3)[plan_name],
    )
    perf = dict(batched.extra.get("perf", {}))
    assert perf.get("batch_jumps", 0) == 0  # kernel must not engage
    assert batched.flow_times.tolist() == unit.flow_times.tolist()
    assert batched.extra["events"] == unit.extra["events"]
    assert batched.extra["faults"] == unit.extra["faults"]


def test_batch_kernel_actually_engages():
    """A batch policy on a plain run must fold (nearly) every event."""
    trace = generate_trace(200, "finance", 0.7, 4, seed=23)
    batched = simulate(trace, 4, policy_by_name("drep"), seed=23)
    unit = simulate(trace, 4, policy_by_name("drep"), seed=23, config=UNIT)
    perf_b = dict(batched.extra.get("perf", {}))
    perf_u = dict(unit.extra.get("perf", {}))
    assert perf_b.get("batch_jumps", 0) > 0
    assert perf_b.get("batch_events_folded", 0) == batched.extra["events"]
    assert perf_b.get("batch_rate_patches", 0) > 0  # sparse patches used
    assert perf_u.get("batch_jumps", 0) == 0
    assert batched.flow_times.tolist() == unit.flow_times.tolist()
