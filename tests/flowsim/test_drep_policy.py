"""Tests for the flow-level DREP policies (paper Sec. III / IV).

Covers the algorithmic rules (free-processor takeover, at-most-one-switch
tie-break, uniform completion re-draw), the Theorem 1.2 preemption budget,
and the Lemma 4.1 uniform-assignment property (statistically).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies.base import ActiveView
from repro.flowsim.policies.drep import DrepParallel, DrepSequential
from repro.workloads.traces import generate_trace
from tests.conftest import make_trace


def view(t, m, ids, remaining, work, release, caps):
    return ActiveView(
        t=t,
        m=m,
        job_ids=np.array(ids, dtype=np.int64),
        remaining=np.array(remaining, float),
        work=np.array(work, float),
        release=np.array(release, float),
        caps=np.array(caps, float),
    )


class TestSequentialRules:
    def test_free_processor_takes_new_job_without_preemption(self):
        pol = DrepSequential()
        pol.reset(m=2, rng=np.random.default_rng(0))
        v = view(0.0, 2, [0], [5.0], [5.0], [0.0], [1.0])
        pol.on_arrival(0, v)
        assert pol.preemptions == 0
        assert pol.processors_of(0).size == 1

    def test_at_most_one_processor_per_job(self):
        pol = DrepSequential()
        pol.reset(m=8, rng=np.random.default_rng(1))
        # arrivals one at a time; each job must end with <= 1 processor
        ids, remaining = [], []
        for j in range(20):
            ids.append(j)
            remaining.append(5.0)
            v = view(0.0, 8, ids, remaining, remaining, [0.0] * len(ids), [1.0] * len(ids))
            pol.on_arrival(j, v)
            for job in ids:
                assert pol.processors_of(job).size <= 1

    def test_all_processors_busy_when_enough_jobs(self):
        pol = DrepSequential()
        pol.reset(m=4, rng=np.random.default_rng(2))
        ids = []
        for j in range(4):
            ids.append(j)
            v = view(0.0, 4, ids, [1.0] * len(ids), [1.0] * len(ids), [0.0] * len(ids), [1.0] * len(ids))
            pol.on_arrival(j, v)
        assigned = sum(pol.processors_of(j).size for j in ids)
        assert assigned == 4  # free processors absorb arrivals first

    def test_completion_redraw_from_unassigned(self):
        pol = DrepSequential()
        pol.reset(m=1, rng=np.random.default_rng(3))
        v1 = view(0.0, 1, [0], [1.0], [1.0], [0.0], [1.0])
        pol.on_arrival(0, v1)
        # job 1 arrives, coin may or may not fire; force known state:
        # complete job 0 with job 1 active and unassigned
        pol._assignment[:] = 0
        v2 = view(1.0, 1, [1], [1.0], [1.0], [0.5], [1.0])
        pol.on_completion(0, v2)
        assert pol.processors_of(1).size == 1

    def test_rates_are_zero_or_one(self, small_random_trace):
        # integral assignment: every job runs at rate exactly 0 or 1
        pol = DrepSequential()
        seen = {0.0, 1.0}
        orig_rates = pol.rates

        def spy(view):
            r = orig_rates(view)
            assert set(np.round(r, 12)) <= seen
            return r

        pol.rates = spy  # type: ignore[assignment]
        simulate(small_random_trace, 4, pol, seed=1)


class TestTheorem12Sequential:
    @pytest.mark.parametrize("m", [1, 4, 16])
    def test_expected_preemptions_at_most_one_per_job(self, m):
        n = 4000
        trace = generate_trace(n, "finance", 0.6, m, seed=m)
        r = simulate(trace, m, DrepSequential(), seed=m)
        # Theorem 1.2: expected preemptions <= n (we allow slack for noise)
        assert r.preemptions <= 1.2 * n

    def test_preemptions_only_on_arrivals(self):
        """With a single job ever active there can be no preemption."""
        trace = make_trace([5.0, 5.0, 5.0], releases=[0.0, 10.0, 20.0])
        r = simulate(trace, 2, DrepSequential(), seed=0)
        assert r.preemptions == 0

    def test_switch_bound(self):
        n, m = 2000, 8
        trace = generate_trace(n, "bing", 0.7, m, seed=5)
        r = simulate(trace, m, DrepSequential(), seed=5)
        assert r.extra["switches"] <= 2 * m * n


class TestParallelRules:
    def test_all_free_processors_join_first_job(self):
        pol = DrepParallel()
        pol.reset(m=8, rng=np.random.default_rng(0))
        v = view(0.0, 8, [0], [8.0], [8.0], [0.0], [8.0])
        pol.on_arrival(0, v)
        assert pol.processors_of(0).size == 8

    def test_rates_capped_by_processor_count(self):
        pol = DrepParallel()
        pol.reset(m=4, rng=np.random.default_rng(1))
        v = view(0.0, 4, [0], [4.0], [4.0], [0.0], [4.0])
        pol.on_arrival(0, v)
        rates = pol.rates(v)
        assert rates[0] == pytest.approx(4.0)

    def test_completion_redraw_spreads_uniformly(self):
        pol = DrepParallel()
        pol.reset(m=1000, rng=np.random.default_rng(2))
        v0 = view(0.0, 1000, [0], [1.0], [1.0], [0.0], [1000.0])
        pol.on_arrival(0, v0)
        # two survivor jobs; complete job 0 -> processors re-draw uniformly
        pol._assignment[:] = 0
        v = view(1.0, 1000, [1, 2], [1.0, 1.0], [1.0, 1.0], [0.0, 0.0], [1000.0, 1000.0])
        pol.on_completion(0, v)
        p1 = pol.processors_of(1).size
        p2 = pol.processors_of(2).size
        assert p1 + p2 == 1000
        assert abs(p1 - p2) < 150  # ~ binomial(1000, 1/2) spread

    def test_switch_probability_one_over_active(self):
        """On arrival each busy processor switches with prob 1/|A|."""
        switched = []
        for seed in range(40):
            pol = DrepParallel()
            pol.reset(m=100, rng=np.random.default_rng(seed))
            v0 = view(0.0, 100, [0], [1.0], [1.0], [0.0], [100.0])
            pol.on_arrival(0, v0)
            v1 = view(
                0.5, 100, [0, 1], [1.0, 1.0], [1.0, 1.0], [0.0, 0.5], [100.0, 100.0]
            )
            pol.on_arrival(1, v1)
            switched.append(pol.processors_of(1).size)
        mean = np.mean(switched)
        # expectation = 100 * 1/2 = 50
        assert 40 < mean < 60


class TestLemma41Uniform:
    def test_processor_assignment_uniform_over_jobs(self):
        """Empirical check of Lemma 4.1: at a fixed time, each processor is
        on any given active job with probability 1/|A(t)|."""
        m, n = 16, 60
        trace = generate_trace(
            n, "fixed", 0.65, m, mode=ParallelismMode.FULLY_PARALLEL, seed=3
        )
        # count processor-job co-occupancy at completion events over many seeds
        counts = []
        for seed in range(120):
            pol = DrepParallel()
            r = simulate(trace, m, pol, seed=seed)
            counts.append(r.mean_flow)
        # not a direct per-instant histogram (engine owns the loop), so
        # check the observable consequence: long-run DREP mean flow is
        # within a modest factor of RR (equi-partition in expectation)
        from repro.flowsim.policies import RoundRobin

        rr = simulate(trace, m, RoundRobin()).mean_flow
        assert np.mean(counts) < 2.5 * rr

    def test_assignment_counts_sum_to_m(self):
        pol = DrepParallel()
        pol.reset(m=12, rng=np.random.default_rng(9))
        ids = []
        for j in range(6):
            ids.append(j)
            caps = [12.0] * len(ids)
            v = view(0.0, 12, ids, [1.0] * len(ids), [1.0] * len(ids), [0.0] * len(ids), caps)
            pol.on_arrival(j, v)
            total = sum(pol.processors_of(job).size for job in ids)
            assert total == 12
