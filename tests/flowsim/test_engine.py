"""Tests for repro.flowsim.engine — exactness, conservation, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import ParallelismMode
from repro.flowsim.engine import FlowSimConfig, FlowSimError, simulate
from repro.flowsim.policies import FIFO, RoundRobin, SRPT
from repro.flowsim.policies.base import ActiveView, Policy
from tests.conftest import make_trace


class TestExactSchedules:
    def test_single_job(self):
        trace = make_trace([5.0])
        r = simulate(trace, m=1, policy=FIFO())
        assert r.flow_times[0] == pytest.approx(5.0)
        assert r.makespan == pytest.approx(5.0)

    def test_released_later(self):
        trace = make_trace([2.0], releases=[3.0])
        r = simulate(trace, m=1, policy=FIFO())
        assert r.flow_times[0] == pytest.approx(2.0)
        assert r.makespan == pytest.approx(5.0)

    def test_fifo_two_jobs_one_core(self):
        trace = make_trace([3.0, 1.0], releases=[0.0, 0.0])
        r = simulate(trace, m=1, policy=FIFO())
        # FIFO: job0 finishes at 3, job1 at 4
        np.testing.assert_allclose(r.flow_times, [3.0, 4.0])

    def test_srpt_two_jobs_one_core(self):
        trace = make_trace([3.0, 1.0], releases=[0.0, 0.0])
        r = simulate(trace, m=1, policy=SRPT())
        # SRPT: job1 first (1), then job0 (4)
        np.testing.assert_allclose(r.flow_times, [4.0, 1.0])

    def test_srpt_preempts_on_arrival(self):
        trace = make_trace([10.0, 1.0], releases=[0.0, 2.0])
        r = simulate(trace, m=1, policy=SRPT())
        # job0 runs 2 units, preempted; job1 runs 2..3; job0 resumes 3..11
        np.testing.assert_allclose(r.flow_times, [11.0, 1.0])

    def test_rr_processor_sharing(self):
        trace = make_trace([2.0, 2.0], releases=[0.0, 0.0])
        r = simulate(trace, m=1, policy=RoundRobin())
        # both share rate 1/2, both finish at 4
        np.testing.assert_allclose(r.flow_times, [4.0, 4.0])

    def test_two_cores_no_contention(self):
        trace = make_trace([2.0, 2.0], releases=[0.0, 0.0])
        r = simulate(trace, m=2, policy=RoundRobin())
        np.testing.assert_allclose(r.flow_times, [2.0, 2.0])

    def test_fully_parallel_job_uses_all_cores(self):
        trace = make_trace([8.0], mode=ParallelismMode.FULLY_PARALLEL, m=4)
        r = simulate(trace, m=4, policy=FIFO())
        assert r.flow_times[0] == pytest.approx(2.0)

    def test_empty_trace(self):
        trace = make_trace([])
        r = simulate(trace, m=2, policy=FIFO())
        assert r.n_jobs == 0


class TestConservation:
    def test_utilization_matches_offered_work(self, small_random_trace):
        r = simulate(small_random_trace, m=4, policy=SRPT())
        total_work = small_random_trace.total_work
        busy = r.extra["utilization"] * r.makespan * 4
        assert busy == pytest.approx(total_work, rel=1e-6)

    def test_flow_at_least_lower_bound(self, small_random_trace):
        r = simulate(small_random_trace, m=4, policy=SRPT())
        for spec, f in zip(small_random_trace.jobs, r.flow_times):
            assert f >= spec.lower_bound(4) * (1 - 1e-9)

    def test_all_jobs_completed(self, small_random_trace):
        r = simulate(small_random_trace, m=4, policy=RoundRobin())
        assert np.isfinite(r.flow_times).all()
        assert r.n_jobs == len(small_random_trace)


class TestPolicyValidation:
    class OverCommitted(Policy):
        name = "bad-total"

        def rates(self, view: ActiveView) -> np.ndarray:
            return np.full(view.n, view.m, dtype=float)

    class OverCap(Policy):
        name = "bad-cap"

        def rates(self, view: ActiveView) -> np.ndarray:
            return view.caps * 2.0

    class Negative(Policy):
        name = "bad-negative"

        def rates(self, view: ActiveView) -> np.ndarray:
            return np.full(view.n, -1.0)

    class WrongShape(Policy):
        name = "bad-shape"

        def rates(self, view: ActiveView) -> np.ndarray:
            return np.zeros(view.n + 1)

    class Lazy(Policy):
        name = "lazy"

        def rates(self, view: ActiveView) -> np.ndarray:
            return np.zeros(view.n)

    def test_total_overcommit_detected(self):
        trace = make_trace([1.0, 1.0])
        with pytest.raises(FlowSimError, match="total rate"):
            simulate(trace, m=1, policy=self.OverCommitted())

    def test_cap_violation_detected(self):
        trace = make_trace([1.0])
        with pytest.raises(FlowSimError, match="cap"):
            simulate(trace, m=4, policy=self.OverCap())

    def test_negative_rate_detected(self):
        trace = make_trace([1.0])
        with pytest.raises(FlowSimError, match="negative"):
            simulate(trace, m=1, policy=self.Negative())

    def test_shape_mismatch_detected(self):
        trace = make_trace([1.0])
        with pytest.raises(FlowSimError, match="shape"):
            simulate(trace, m=1, policy=self.WrongShape())

    def test_stall_detected(self):
        trace = make_trace([1.0])
        with pytest.raises(FlowSimError, match="stalled"):
            simulate(trace, m=1, policy=self.Lazy())

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            simulate(make_trace([1.0]), m=0, policy=FIFO())


class TestEventBudget:
    """The Zeno guard: a bounded default event budget of ``60 * n + 1000``."""

    class ZenoTimer(Policy):
        """Serves properly, but schedules timers at ever-shrinking steps."""

        name = "zeno"

        def rates(self, view: ActiveView) -> np.ndarray:
            rates = np.zeros(view.n)
            rates[0] = min(1.0, view.caps[0])
            return rates

        def next_timer(self, view: ActiveView) -> float | None:
            return view.t + 1e-12

    def test_default_matches_docstring(self):
        from repro.flowsim.engine import default_max_events

        for n in (0, 1, 10, 1000):
            assert default_max_events(n) == 60 * n + 1000
        # keep the formula and its documentation in lockstep
        assert "60 * n + 1000" in default_max_events.__doc__

    def test_default_budget_admits_normal_runs(self, small_random_trace):
        # None in the config means "use the default", not "unbounded"
        r = simulate(
            small_random_trace,
            m=4,
            policy=RoundRobin(),
            config=FlowSimConfig(max_events=None),
        )
        n = len(small_random_trace)
        assert r.extra["events"] <= 60 * n + 1000

    def test_zeno_policy_trips_the_guard(self):
        trace = make_trace([1.0, 2.0, 3.0])
        with pytest.raises(FlowSimError, match="Zeno"):
            simulate(trace, m=1, policy=self.ZenoTimer())

    def test_explicit_budget_overrides_default(self):
        # a generous explicit cap lets the same pathological policy limp
        # further than the default would
        trace = make_trace([0.001])
        with pytest.raises(FlowSimError, match="exceeded 5 events"):
            simulate(
                trace,
                m=1,
                policy=self.ZenoTimer(),
                config=FlowSimConfig(max_events=5),
            )


class TestDeterminism:
    def test_same_seed_same_result(self, small_random_trace):
        from repro.flowsim.policies import DrepSequential

        a = simulate(small_random_trace, 4, DrepSequential(), seed=5)
        b = simulate(small_random_trace, 4, DrepSequential(), seed=5)
        np.testing.assert_array_equal(a.flow_times, b.flow_times)
        assert a.preemptions == b.preemptions

    def test_different_seed_differs(self, small_random_trace):
        from repro.flowsim.policies import DrepSequential

        a = simulate(small_random_trace, 4, DrepSequential(), seed=5)
        b = simulate(small_random_trace, 4, DrepSequential(), seed=6)
        assert not np.array_equal(a.flow_times, b.flow_times)

    def test_config_event_cap(self):
        trace = make_trace([1.0, 1.0])
        with pytest.raises(FlowSimError, match="events"):
            simulate(
                trace, m=1, policy=FIFO(), config=FlowSimConfig(max_events=1)
            )
