"""Property-based tests for the flow-level engine across all policies.

Random small instances; invariants that must hold for every policy:
conservation of work, flow >= per-job lower bound, completion of all
jobs, determinism under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import (
    FIFO,
    LAPS,
    RoundRobin,
    SETF,
    SJF,
    SRPT,
    DrepParallel,
    DrepSequential,
)
from repro.workloads.traces import Trace

POLICY_FACTORIES = [
    SRPT,
    SJF,
    RoundRobin,
    FIFO,
    LAPS,
    SETF,
    DrepSequential,
    DrepParallel,
]


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 12))
    m = draw(st.integers(1, 6))
    mode = draw(
        st.sampled_from([ParallelismMode.SEQUENTIAL, ParallelismMode.FULLY_PARALLEL])
    )
    releases = sorted(
        draw(
            st.lists(
                st.floats(0.0, 50.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    works = draw(
        st.lists(st.floats(0.1, 20.0, allow_nan=False), min_size=n, max_size=n)
    )
    jobs = []
    for i in range(n):
        w = float(works[i])
        span = w if mode is ParallelismMode.SEQUENTIAL else w / m
        jobs.append(
            JobSpec(job_id=i, release=float(releases[i]), work=w, span=span, mode=mode)
        )
    return Trace(jobs=jobs, m=m), m


@settings(max_examples=40, deadline=None)
@given(inst=random_instance(), policy_idx=st.integers(0, len(POLICY_FACTORIES) - 1))
def test_engine_invariants_random_instances(inst, policy_idx):
    trace, m = inst
    policy = POLICY_FACTORIES[policy_idx]()
    result = simulate(trace, m, policy, seed=3)

    # every job completed, no NaNs
    assert np.isfinite(result.flow_times).all()
    assert result.n_jobs == len(trace)

    # flow time >= the Observation 1 lower bound for each job
    for spec, f in zip(trace.jobs, result.flow_times):
        assert f >= spec.lower_bound(m) * (1 - 1e-7) - 1e-9

    # conservation: processor-time used equals total work (unit speed)
    busy = result.extra["utilization"] * result.makespan * m
    if result.makespan > 0:
        assert busy == pytest.approx(trace.total_work, rel=1e-5, abs=1e-6)

    # makespan is at least the last completion's lower bound
    last = max(
        spec.release + spec.lower_bound(m) for spec in trace.jobs
    )
    assert result.makespan >= last * (1 - 1e-9) - 1e-9


@settings(max_examples=15, deadline=None)
@given(inst=random_instance())
def test_srpt_floor_property(inst):
    """SRPT lower-bounds every other policy on single-resource settings
    (m == 1, or fully parallel jobs where the machine acts as one
    resource)."""
    trace, m = inst
    mode = trace.jobs[0].mode
    if m > 1 and mode is ParallelismMode.SEQUENTIAL:
        return  # SRPT is not exactly optimal for parallel machines
    srpt = simulate(trace, m, SRPT(), seed=1).mean_flow
    for factory in (SJF, FIFO, RoundRobin, SETF):
        other = simulate(trace, m, factory(), seed=1).mean_flow
        assert srpt <= other * (1 + 1e-6) + 1e-9


@settings(max_examples=20, deadline=None)
@given(inst=random_instance(), seed=st.integers(0, 50))
def test_drep_switch_budget_random(inst, seed):
    trace, m = inst
    mode = trace.jobs[0].mode
    policy = (
        DrepSequential() if mode is ParallelismMode.SEQUENTIAL else DrepParallel()
    )
    result = simulate(trace, m, policy, seed=seed)
    assert result.extra["switches"] <= 2 * m * len(trace)
