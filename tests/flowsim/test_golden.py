"""Golden bit-for-bit equivalence tests for the flow-level engine.

``tests/data/golden_flowsim.json`` was captured from the pre-optimization
engine (before the PR-2 hot-path overhaul: cached active-set views, the
``rates_stable`` rate cache, amortized invariant checks).  Every policy
must reproduce it exactly — per-job flow times at full float precision,
event/switch counters, and the policy RNG end-state digest where a
policy draws randomness.

Two extra gates pin the amortization contract:

* ``check_every_k=1`` (validate every rate call) must give identical
  results to the default ``check_every_k=32`` — the skipped checks are
  pure validation, never semantics;
* a large ``check_every_k`` likewise changes nothing.

Regenerate the goldens only for a deliberate semantic change
(``PYTHONPATH=src python tests/data/gen_goldens.py``).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.flowsim.engine import FlowSimConfig

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

_spec = importlib.util.spec_from_file_location(
    "gen_goldens", DATA_DIR / "gen_goldens.py"
)
gen_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_goldens)

GOLDEN = json.loads((DATA_DIR / "golden_flowsim.json").read_text())


@pytest.fixture(scope="module")
def seq_trace():
    return gen_goldens.flow_seq_trace()


@pytest.fixture(scope="module")
def par_trace():
    return gen_goldens.flow_par_trace()


def test_golden_covers_all_cases():
    expected = (
        {f"seq/{p}" for p in gen_goldens.FLOW_SEQ_POLICIES}
        | {f"par/{p}" for p in gen_goldens.FLOW_PAR_POLICIES}
        | {"seq/drep/speed2", "profiled/srpt"}
    )
    assert expected == set(GOLDEN)


@pytest.mark.parametrize("policy", gen_goldens.FLOW_SEQ_POLICIES)
def test_sequential_bit_for_bit(seq_trace, policy):
    got = gen_goldens.run_flow_case(seq_trace, 4, policy, seed=7)
    assert json.loads(json.dumps(got)) == GOLDEN[f"seq/{policy}"]


@pytest.mark.parametrize("policy", gen_goldens.FLOW_PAR_POLICIES)
def test_parallel_bit_for_bit(par_trace, policy):
    got = gen_goldens.run_flow_case(par_trace, 4, policy, seed=7)
    assert json.loads(json.dumps(got)) == GOLDEN[f"par/{policy}"]


def test_speed_augmented_bit_for_bit(seq_trace):
    got = gen_goldens.run_flow_case(
        seq_trace, 4, "drep", seed=7, config=FlowSimConfig(speed=2.0)
    )
    assert json.loads(json.dumps(got)) == GOLDEN["seq/drep/speed2"]


def test_profiled_bit_for_bit():
    got = gen_goldens.run_flow_case(
        gen_goldens.flow_profiled_trace(),
        4,
        "srpt",
        seed=7,
        config=FlowSimConfig(use_profiles=True),
    )
    assert json.loads(json.dumps(got)) == GOLDEN["profiled/srpt"]


@pytest.mark.parametrize("policy", ["srpt", "rr", "drep", "setf", "wdrep"])
@pytest.mark.parametrize("k", [1, 1000])
def test_check_every_k_is_pure_validation(seq_trace, policy, k):
    got = gen_goldens.run_flow_case(
        seq_trace, 4, policy, seed=7, config=FlowSimConfig(check_every_k=k)
    )
    assert json.loads(json.dumps(got)) == GOLDEN[f"seq/{policy}"]


# -- the vectorized rates_array hook vs the legacy object path ------------
#
# `use_rates_array=False` forces every policy through `rates(view)` even
# when it implements the vectorized hook.  Both paths must hit the same
# goldens bit-for-bit: the hook is an execution strategy, never semantics.


@pytest.mark.parametrize("policy", gen_goldens.FLOW_SEQ_POLICIES)
def test_sequential_object_path_bit_for_bit(seq_trace, policy):
    got = gen_goldens.run_flow_case(
        seq_trace, 4, policy, seed=7, config=FlowSimConfig(use_rates_array=False)
    )
    assert json.loads(json.dumps(got)) == GOLDEN[f"seq/{policy}"]


@pytest.mark.parametrize("policy", gen_goldens.FLOW_PAR_POLICIES)
def test_parallel_object_path_bit_for_bit(par_trace, policy):
    got = gen_goldens.run_flow_case(
        par_trace, 4, policy, seed=7, config=FlowSimConfig(use_rates_array=False)
    )
    assert json.loads(json.dumps(got)) == GOLDEN[f"par/{policy}"]


def test_speed_augmented_object_path_bit_for_bit(seq_trace):
    got = gen_goldens.run_flow_case(
        seq_trace,
        4,
        "drep",
        seed=7,
        config=FlowSimConfig(speed=2.0, use_rates_array=False),
    )
    assert json.loads(json.dumps(got)) == GOLDEN["seq/drep/speed2"]


def test_profiled_object_path_bit_for_bit():
    got = gen_goldens.run_flow_case(
        gen_goldens.flow_profiled_trace(),
        4,
        "srpt",
        seed=7,
        config=FlowSimConfig(use_profiles=True, use_rates_array=False),
    )
    assert json.loads(json.dumps(got)) == GOLDEN["profiled/srpt"]
