"""Property tests: incremental order/calendar kernels ≡ dense lexsort path.

``use_incremental=True`` (the default) lets order-driven policies (SRPT,
SJF/SWF, FIFO, LAPS) run on the engine-maintained
:class:`~repro.flowsim.order.OrderIndex` and
:class:`~repro.flowsim.order.CompletionCalendar` instead of re-sorting
the whole active set and scanning every remaining-work entry per event;
``False`` forces the classic dense ``np.lexsort`` + full next-event
scan.  These tests generate random instances with Hypothesis and require
the two executions to agree *exactly* — per-job flow times at full float
precision, event/switch counters, utilization — across policies, check
cadences, fault plans, streaming chunkings, and the batch-kernel on/off
axis.

The sibling files pin the other engine equivalences: ``test_soa_equivalence``
(SoA ≡ object path) and ``test_batch_equivalence`` (batch kernel ≡ unit
steps).  This one pins PR 10's O(log n) structures to all of them.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.faults import FaultEvent, FaultPlan, named_fault_plans
from repro.flowsim.engine import FlowSimConfig, FlowStepper, simulate
from repro.flowsim.policies import policy_by_name
from repro.flowsim.stream import simulate_stream
from repro.workloads.traces import Trace, generate_trace

DATA_DIR = Path(__file__).resolve().parents[1] / "data"
_spec = importlib.util.spec_from_file_location(
    "gen_goldens", DATA_DIR / "gen_goldens.py"
)
gen_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_goldens)

#: every policy publishing an order_spec (the incremental-eligible set)
ORDER_POLICIES = ["srpt", "sjf", "swf", "fifo", "laps"]

DENSE = FlowSimConfig(use_incremental=False)
#: promote at construction — the instances here are far below the
#: default ``incremental_min_active`` crossover threshold, which would
#: otherwise (correctly) keep them on the dense path and make the
#: equivalence vacuous.  Mid-run promotion has its own test below.
INC = FlowSimConfig(incremental_min_active=0)


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 14))
    m = draw(st.integers(1, 6))
    mode = draw(
        st.sampled_from([ParallelismMode.SEQUENTIAL, ParallelismMode.FULLY_PARALLEL])
    )
    releases = sorted(
        draw(
            st.lists(
                st.floats(0.0, 40.0, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    works = draw(
        st.lists(st.floats(0.1, 15.0, allow_nan=False), min_size=n, max_size=n)
    )
    jobs = []
    for i in range(n):
        w = float(works[i])
        span = w if mode is ParallelismMode.SEQUENTIAL else w / m
        jobs.append(
            JobSpec(job_id=i, release=float(releases[i]), work=w, span=span, mode=mode)
        )
    return Trace(jobs=jobs, m=m), m, mode


@settings(max_examples=80, deadline=None)
@given(
    inst=random_instance(),
    policy_idx=st.integers(0, len(ORDER_POLICIES) - 1),
    seed=st.integers(0, 20),
)
def test_incremental_equals_dense(inst, policy_idx, seed):
    trace, m, mode = inst
    policy = ORDER_POLICIES[policy_idx]
    inc = gen_goldens.run_flow_case(trace, m, policy, seed=seed, config=INC)
    dense = gen_goldens.run_flow_case(trace, m, policy, seed=seed, config=DENSE)
    assert inc == dense


@settings(max_examples=30, deadline=None)
@given(
    inst=random_instance(),
    policy_idx=st.integers(0, len(ORDER_POLICIES) - 1),
    k=st.sampled_from([1, 7, 1000]),
)
def test_incremental_equals_dense_under_check_k(inst, policy_idx, k):
    """The incremental tail must honor the amortized-check cadence —
    ``checks_run``/``checks_skipped`` advance only on alloc rebuilds,
    exactly as ``_check_rates`` does on the dense path."""
    trace, m, mode = inst
    policy = ORDER_POLICIES[policy_idx]
    inc = gen_goldens.run_flow_case(
        trace, m, policy, seed=5,
        config=FlowSimConfig(check_every_k=k, incremental_min_active=0),
    )
    dense = gen_goldens.run_flow_case(
        trace,
        m,
        policy,
        seed=5,
        config=FlowSimConfig(check_every_k=k, use_incremental=False),
    )
    assert inc == dense


@settings(max_examples=30, deadline=None)
@given(
    inst=random_instance(),
    policy_idx=st.integers(0, len(ORDER_POLICIES) - 1),
    seed=st.integers(0, 10),
)
def test_incremental_equals_dense_unit_steps(inst, policy_idx, seed):
    """With the batch kernel off, the per-event incremental tail
    (``_inc_step_tail``) must still match the dense ``step()`` exactly."""
    trace, m, mode = inst
    policy = ORDER_POLICIES[policy_idx]
    inc = gen_goldens.run_flow_case(
        trace, m, policy, seed=seed,
        config=FlowSimConfig(
            use_batch_horizon=False, incremental_min_active=0
        ),
    )
    dense = gen_goldens.run_flow_case(
        trace, m, policy, seed=seed,
        config=FlowSimConfig(use_batch_horizon=False, use_incremental=False),
    )
    assert inc == dense


@settings(max_examples=25, deadline=None)
@given(
    inst=random_instance(),
    policy_idx=st.integers(0, len(ORDER_POLICIES) - 1),
    chunk=st.sampled_from([1, 3, 97]),
    harvest=st.sampled_from([1, 300]),
)
def test_incremental_streaming_chunk_invariance(inst, policy_idx, chunk, harvest):
    """Streamed ingestion at any chunking matches the dense streamed run."""
    trace, m, mode = inst
    policy = ORDER_POLICIES[policy_idx]

    def run(config):
        r = simulate_stream(
            list(trace.jobs), m, policy_by_name(policy), seed=3,
            config=config, keep_flow_times=True,
            ingest_chunk=chunk, harvest_every=harvest,
        )
        return (
            r.metrics.flow_times.tolist(),
            r.extra["events"],
            r.makespan,
            r.extra["utilization"],
        )

    assert run(INC) == run(DENSE)


@pytest.mark.parametrize("policy", ORDER_POLICIES)
@pytest.mark.parametrize("plan_name", ["rolling", "half-down", "random"])
def test_incremental_under_fault_plans(policy, plan_name):
    """Fault timelines force the per-event tail; structures must track
    mass evictions, rate degradations and requeues bit for bit."""
    trace = generate_trace(120, "finance", 0.7, 4, seed=17)
    horizon = max(j.release for j in trace.jobs) + 50.0
    inc = simulate(
        trace, 4, policy_by_name(policy), seed=17, config=INC,
        faults=named_fault_plans(4, horizon, seed=3)[plan_name],
    )
    dense = simulate(
        trace, 4, policy_by_name(policy), seed=17, config=DENSE,
        faults=named_fault_plans(4, horizon, seed=3)[plan_name],
    )
    assert inc.flow_times.tolist() == dense.flow_times.tolist()
    assert inc.extra["events"] == dense.extra["events"]
    assert inc.extra["faults"] == dense.extra["faults"]


def test_incremental_kernel_actually_engages():
    """An order policy on a plain run must drive the structures: order
    mutations recorded, calendar pops well below the dense scan cost,
    and the dense config must leave all three counters at zero."""
    trace = generate_trace(300, "finance", 0.7, 4, seed=23)
    inc = simulate(trace, 4, policy_by_name("srpt"), seed=23, config=INC)
    dense = simulate(trace, 4, policy_by_name("srpt"), seed=23, config=DENSE)
    perf_i = dict(inc.extra.get("perf", {}))
    perf_d = dict(dense.extra.get("perf", {}))
    assert perf_i.get("order_ops", 0) > 0
    assert perf_i.get("calendar_pops", 0) > 0
    assert perf_d.get("order_ops", 0) == 0
    assert perf_d.get("calendar_pops", 0) == 0
    assert perf_d.get("calendar_invalidations", 0) == 0
    assert inc.flow_times.tolist() == dense.flow_times.tolist()


def test_object_path_forces_dense_fallback():
    """``use_rates_array=False`` removes the SoA surface the incremental
    core needs; the engine must stand down to the object path, not drift."""
    trace = generate_trace(80, "bing", 0.7, 4, seed=11)
    obj = simulate(
        trace, 4, policy_by_name("srpt"), seed=11,
        config=FlowSimConfig(use_rates_array=False),
    )
    perf = dict(obj.extra.get("perf", {}))
    assert perf.get("order_ops", 0) == 0
    dense = simulate(trace, 4, policy_by_name("srpt"), seed=11, config=DENSE)
    assert obj.flow_times.tolist() == dense.flow_times.tolist()


@settings(max_examples=40, deadline=None)
@given(
    inst=random_instance(),
    policy_idx=st.integers(0, len(ORDER_POLICIES) - 1),
    min_active=st.sampled_from([1, 2, 4, 7]),
    seed=st.integers(0, 10),
)
def test_mid_run_promotion_equals_dense(inst, policy_idx, min_active, seed):
    """``incremental_min_active`` between 1 and the instance size makes
    the run start dense and promote mid-flight — the switch must be
    unobservable (flows, events, utilization all bit-for-bit the dense
    run's) at every crossing point."""
    trace, m, mode = inst
    policy = ORDER_POLICIES[policy_idx]
    hybrid = gen_goldens.run_flow_case(
        trace, m, policy, seed=seed,
        config=FlowSimConfig(incremental_min_active=min_active),
    )
    dense = gen_goldens.run_flow_case(trace, m, policy, seed=seed, config=DENSE)
    assert hybrid == dense


def test_promotion_threshold_defers_structures():
    """Below the threshold the dense path must actually run (no order
    ops paid); crossing it mid-run must light the structures up."""
    trace = generate_trace(300, "finance", 0.7, 4, seed=23)
    never = simulate(
        trace, 4, policy_by_name("srpt"), seed=23,
        config=FlowSimConfig(incremental_min_active=10**9),
    )
    assert dict(never.extra.get("perf", {})).get("order_ops", 0) == 0

    # a staircase guarantees the active set crosses a small threshold
    jobs = [
        JobSpec(job_id=i, release=i * 1e-3, work=30.0, span=30.0)
        for i in range(60)
    ]
    staircase = Trace(jobs=jobs, m=4)
    promoted = simulate(
        staircase, 4, policy_by_name("srpt"), seed=1,
        config=FlowSimConfig(incremental_min_active=20),
    )
    dense = simulate(staircase, 4, policy_by_name("srpt"), seed=1, config=DENSE)
    assert dict(promoted.extra.get("perf", {})).get("order_ops", 0) > 0
    assert promoted.flow_times.tolist() == dense.flow_times.tolist()
    assert promoted.extra["events"] == dense.extra["events"]


# -- satellite (c): empty-active-set step under mass eviction ------------


@pytest.mark.parametrize("use_incremental", [True, False])
def test_mass_eviction_empties_active_set_then_parks(use_incremental):
    """A crash window that swallows every processor while aborts drain
    the whole active set must leave the engine parked at the next
    arrival — not raising, not spinning — on both paths.

    Regression guard for the dense ``na == 0`` sweep after fault
    evictions: the step must fall through to the idle-jump branch and
    the requeued/abort-resubmitted jobs must still complete.
    """
    jobs = [
        JobSpec(job_id=0, release=0.0, work=10.0, span=10.0),
        JobSpec(job_id=1, release=0.5, work=10.0, span=10.0),
        JobSpec(job_id=2, release=100.0, work=1.0, span=1.0),
    ]
    trace = Trace(jobs=jobs, m=2)
    # both running jobs aborted at t=1 (resubmitted far later), all
    # processors down over the same window: the active set is empty
    # while the clock is inside the crash
    plan = FaultPlan(
        (
            FaultEvent(kind="abort", t=1.0, job_id=0, resubmit_after=95.0),
            FaultEvent(kind="abort", t=1.0, job_id=1, resubmit_after=94.0),
            FaultEvent(kind="crash", t=1.0, duration=5.0, proc=0),
            FaultEvent(kind="crash", t=1.0, duration=5.0, proc=1),
        ),
        name="blackout+abort",
    )
    config = FlowSimConfig(
        use_incremental=use_incremental, incremental_min_active=0
    )
    stepper = FlowStepper(
        2, policy_by_name("srpt"), seed=0, config=config, faults=plan
    )
    stepper.add_jobs(jobs)
    stepper.advance_to(2.0)
    assert stepper.n_active == 0  # everything evicted mid-crash
    stepper.drain()
    res = stepper.result()
    assert stepper.n_completed == 3
    assert res.flow_times.tolist() == pytest.approx([107.0, 104.5, 1.0])


# -- satellite (d): heavy churn with a 10^4-deep active set --------------


def _staircase(n, work):
    """Adversarial staircase: arrivals creep by 1ms so the whole set is
    simultaneously active long before anything can finish."""
    for i in range(n):
        yield JobSpec(job_id=i, release=i * 1e-3, work=work, span=work)


@pytest.mark.slow
def test_heavy_churn_staircase_10k_active():
    n, m, work = 10_000, 8, 50.0
    results = {}
    for label, config in (
        ("inc", FlowSimConfig()),
        ("dense", FlowSimConfig(use_incremental=False)),
    ):
        r = simulate_stream(
            _staircase(n, work), m, policy_by_name("fifo"), seed=0,
            config=config,
        )
        s = r.summary()
        results[label] = (
            s["n_jobs"], s["mean_flow"], s["p50_flow"], s["p99_flow"],
            s["max_flow"], s["total_flow"], s["events"], r.makespan,
            s["utilization"],
        )
        if label == "inc":
            perf = s["perf"]
            events = s["events"]
            # the dense scan would divide every active remaining-work
            # entry per event: events * n_active ≈ 2e8 quotients.  The
            # calendar must stay orders of magnitude below that.
            assert perf["calendar_pops"] < events * n * 0.01
            assert perf["order_ops"] >= 2 * n  # one insert+remove per job
    assert results["inc"] == results["dense"]
