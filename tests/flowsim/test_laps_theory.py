"""Theory-anchored behavioral tests for LAPS's beta parameter.

LAPS(beta) is (1+beta·ε')-speed O(1/(beta·ε'))-competitive flavors: the
smaller the served fraction beta, the more SETF-like (favoring recent
arrivals) and the more speed the guarantee needs.  At unit speed on
moderate loads, tiny beta concentrates capacity on the newest jobs and
starves older ones — measurable as worse mean flow and much worse tail.
"""

from __future__ import annotations

import pytest

from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import LAPS, RoundRobin
from repro.workloads.traces import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(4000, "finance", 0.7, 4, seed=61)


class TestBetaSensitivity:
    def test_small_beta_hurts_at_unit_speed(self, trace):
        flows = {
            beta: simulate(trace, 4, LAPS(beta=beta), seed=61).mean_flow
            for beta in (0.1, 0.5, 1.0)
        }
        assert flows[0.1] > flows[0.5] > flows[1.0] * 0.95

    def test_beta_one_is_rr_at_any_speed(self, trace):
        for speed in (1.0, 1.5):
            cfg = FlowSimConfig(speed=speed)
            laps = simulate(trace, 4, LAPS(beta=1.0), seed=61, config=cfg)
            rr = simulate(trace, 4, RoundRobin(), seed=61, config=cfg)
            assert laps.mean_flow == pytest.approx(rr.mean_flow, rel=1e-9)

    def test_speed_helps_every_beta(self, trace):
        for beta in (0.1, 0.5, 1.0):
            slow = simulate(trace, 4, LAPS(beta=beta), seed=61).mean_flow
            fast = simulate(
                trace, 4, LAPS(beta=beta), seed=61, config=FlowSimConfig(speed=1.5)
            ).mean_flow
            assert fast < slow

    def test_tail_suffers_most(self, trace):
        narrow = simulate(trace, 4, LAPS(beta=0.1), seed=61)
        full = simulate(trace, 4, LAPS(beta=1.0), seed=61)
        # p99 blows up faster than the mean when old jobs starve
        p99_ratio = narrow.percentile(99) / full.percentile(99)
        mean_ratio = narrow.mean_flow / full.mean_flow
        assert p99_ratio > mean_ratio
