"""Tests for the MLF policy (practical SETF approximation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowsim.engine import simulate
from repro.flowsim.policies import MLF, SETF, SRPT
from repro.workloads.traces import generate_trace
from tests.conftest import make_trace


class TestMlfConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MLF(base=0.0)
        with pytest.raises(ValueError):
            MLF(growth=1.0)

    def test_name(self):
        assert MLF(base=0.5, growth=4.0).name == "MLF(b=0.5,g=4)"

    def test_preemption_estimate(self):
        mlf = MLF(base=1.0, growth=2.0)
        assert mlf.preemption_estimate(0.5) == 0
        assert mlf.preemption_estimate(8.0) == 3
        assert mlf.preemption_estimate(1000.0) == 10


class TestMlfScheduling:
    def test_fresh_job_preempts_old_one(self):
        """A long job demoted below level 0 yields to a fresh arrival."""
        trace = make_trace([10.0, 1.0], releases=[0.0, 3.0])
        r = simulate(trace, 1, MLF(base=1.0, growth=2.0))
        # job1 arrives at level 0 while job0 (attained 3) sits at level 2
        assert r.flow_times[1] == pytest.approx(1.0)

    def test_single_job_runs_at_full_rate(self):
        trace = make_trace([8.0])
        r = simulate(trace, 1, MLF())
        assert r.flow_times[0] == pytest.approx(8.0)

    def test_work_conserving(self, small_random_trace):
        r = simulate(small_random_trace, 4, MLF())
        busy = r.extra["utilization"] * r.makespan * 4
        assert busy == pytest.approx(small_random_trace.total_work, rel=1e-6)

    def test_all_jobs_finish(self, small_random_trace):
        r = simulate(small_random_trace, 4, MLF())
        assert np.isfinite(r.flow_times).all()

    def test_tracks_setf(self):
        """MLF approximates SETF: mean flows within a modest factor."""
        trace = generate_trace(3000, "finance", 0.6, 4, seed=51)
        mlf = simulate(trace, 4, MLF(base=0.25, growth=2.0)).mean_flow
        setf = simulate(trace, 4, SETF()).mean_flow
        assert mlf <= 1.5 * setf
        assert setf <= 1.5 * mlf

    def test_finer_levels_approach_setf(self):
        """Smaller growth factor => closer to ideal SETF."""
        trace = generate_trace(2500, "bing", 0.6, 2, seed=52)
        setf = simulate(trace, 2, SETF()).mean_flow
        coarse = simulate(trace, 2, MLF(base=1.0, growth=8.0)).mean_flow
        fine = simulate(trace, 2, MLF(base=0.125, growth=1.3)).mean_flow
        assert abs(fine - setf) <= abs(coarse - setf) + 0.05 * setf

    def test_never_beats_srpt(self, small_random_trace):
        srpt = simulate(small_random_trace, 1, SRPT()).mean_flow
        mlf = simulate(small_random_trace, 1, MLF()).mean_flow
        assert srpt <= mlf * (1 + 1e-9)
