"""Numerical-extremes robustness for the flow-level engine.

Simulation engines die at scale on float pathologies; these tests pin
behaviour with tiny/huge work values, extreme work ratios (the paper's
lower bound is parameterized by exactly this ratio k), long horizons and
simultaneous events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import FIFO, RoundRobin, SETF, SRPT, DrepSequential
from repro.workloads.traces import Trace
from tests.conftest import make_trace


class TestExtremeScales:
    def test_tiny_work_values(self):
        trace = make_trace([1e-9, 1e-9, 1e-9])
        r = simulate(trace, 1, SRPT())
        assert np.isfinite(r.flow_times).all()
        assert (r.flow_times > 0).all()

    def test_huge_work_values(self):
        trace = make_trace([1e12, 1e12])
        r = simulate(trace, 2, FIFO())
        np.testing.assert_allclose(r.flow_times, 1e12)

    def test_extreme_work_ratio(self):
        """k = max/min work of 1e12 (the lower-bound parameter)."""
        trace = make_trace([1e-3, 1e9], releases=[0.0, 0.0])
        r = simulate(trace, 1, SRPT())
        assert r.flow_times[0] == pytest.approx(1e-3, rel=1e-6)
        assert r.flow_times[1] == pytest.approx(1e9, rel=1e-6)

    def test_long_idle_horizon(self):
        trace = make_trace([1.0, 1.0], releases=[0.0, 1e9])
        r = simulate(trace, 1, FIFO())
        assert r.makespan == pytest.approx(1e9 + 1.0)
        np.testing.assert_allclose(r.flow_times, 1.0)

    def test_many_simultaneous_arrivals(self):
        trace = make_trace([1.0] * 50, releases=[5.0] * 50)
        r = simulate(trace, 4, RoundRobin())
        # all arrive together; processor sharing finishes all at once
        assert np.isfinite(r.flow_times).all()
        assert r.flow_times.max() == pytest.approx(50.0 / 4.0)

    def test_simultaneous_arrival_and_completion(self):
        # job0 completes exactly when job1 arrives
        trace = make_trace([2.0, 1.0], releases=[0.0, 2.0])
        r = simulate(trace, 1, FIFO())
        np.testing.assert_allclose(r.flow_times, [2.0, 1.0])


class TestAccumulationError:
    def test_ten_thousand_events_conserve_work(self):
        rngs = np.random.default_rng(3)
        n = 5000
        works = rngs.exponential(1.0, n) + 1e-6
        releases = np.cumsum(rngs.exponential(0.3, n))
        jobs = [
            JobSpec(i, float(releases[i]), float(works[i]), float(works[i]))
            for i in range(n)
        ]
        trace = Trace(jobs=jobs, m=4)
        r = simulate(trace, 4, SETF())
        busy = r.extra["utilization"] * r.makespan * 4
        assert busy == pytest.approx(trace.total_work, rel=1e-6)

    def test_drep_flow_floor_after_many_events(self):
        rngs = np.random.default_rng(4)
        n = 3000
        works = rngs.lognormal(0, 1.5, n) + 1e-9
        releases = np.cumsum(rngs.exponential(0.5, n))
        jobs = [
            JobSpec(i, float(releases[i]), float(works[i]), float(works[i]))
            for i in range(n)
        ]
        trace = Trace(jobs=jobs, m=2)
        r = simulate(trace, 2, DrepSequential(), seed=4)
        lower = np.array([j.lower_bound(2) for j in trace.jobs])
        assert (r.flow_times >= lower * (1 - 1e-7) - 1e-12).all()


class TestFullyParallelExtremes:
    def test_single_instantaneous_job(self):
        jobs = [
            JobSpec(0, 0.0, 1e-12, 1e-13, ParallelismMode.FULLY_PARALLEL)
        ]
        trace = Trace(jobs=jobs, m=8)
        r = simulate(trace, 8, SRPT())
        assert r.flow_times[0] >= 0
        assert r.flow_times[0] == pytest.approx(1e-12 / 8, abs=1e-12)
