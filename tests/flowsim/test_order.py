"""Unit and property tests for the incremental order structures.

:class:`OrderIndex` is checked against a plain sorted list (the oracle
``np.lexsort`` reduces to), :class:`CompletionCalendar` against a dense
min-scan over its live map, and :func:`sparse_sum` bit-for-bit against
``np.add.reduce`` on the materialized dense vector — the exactness the
engine's ``busy_time`` accounting rests on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim.order import CompletionCalendar, OrderIndex, sparse_sum


# -- OrderIndex ----------------------------------------------------------


def test_order_index_basic():
    idx = OrderIndex()
    assert len(idx) == 0
    idx.insert(3.0, 1)
    idx.insert(1.0, 2)
    idx.insert(3.0, 0)
    assert list(idx) == [(1.0, 2), (3.0, 0), (3.0, 1)]
    assert idx.select(0) == (1.0, 2)
    assert idx.select(2) == (3.0, 1)
    assert idx.rank(3.0, 1) == 2
    assert (3.0, 0) in idx
    assert (2.0, 0) not in idx
    idx.remove(3.0, 0)
    assert list(idx) == [(1.0, 2), (3.0, 1)]
    assert idx.ops == 4


def test_order_index_remove_missing_raises():
    idx = OrderIndex()
    idx.insert(1.0, 0)
    with pytest.raises(KeyError):
        idx.remove(2.0, 0)
    with pytest.raises(KeyError):
        idx.remove(1.0, 1)
    with pytest.raises(KeyError):
        OrderIndex().remove(1.0, 0)


def test_order_index_select_bounds():
    idx = OrderIndex()
    idx.insert(1.0, 0)
    with pytest.raises(IndexError):
        idx.select(1)
    with pytest.raises(IndexError):
        idx.select(-1)


def test_order_index_head():
    idx = OrderIndex(load=4)
    for i in range(20):
        idx.insert(float(i % 5), i)
    assert idx.head(3) == sorted((float(i % 5), i) for i in range(20))[:3]
    assert idx.head(0) == []
    assert idx.head(100) == sorted((float(i % 5), i) for i in range(20))


def test_order_index_matches_lexsort_order():
    """(key, tie) ascending iteration is exactly np.lexsort((tie, key))."""
    rng = np.random.default_rng(0)
    keys = rng.choice([1.0, 2.0, 5.0, 7.5], size=200)
    ties = rng.permutation(200)
    idx = OrderIndex(load=8)
    for k, t in zip(keys, ties):
        idx.insert(float(k), int(t))
    order = np.lexsort((ties, keys))
    assert list(idx) == [(float(keys[i]), int(ties[i])) for i in order]


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "select", "rank"]),
            st.integers(0, 9),
            st.integers(0, 30),
        ),
        max_size=120,
    ),
    load=st.sampled_from([1, 2, 4, 256]),
)
def test_order_index_against_sorted_list(ops, load):
    """Random op soup against the obvious sorted-list oracle."""
    idx = OrderIndex(load=load)
    oracle: list[tuple[float, int]] = []
    for op, key_i, tie in ops:
        item = (float(key_i) / 2.0, tie)
        if op == "insert":
            if item not in oracle:
                idx.insert(*item)
                oracle.append(item)
                oracle.sort()
        elif op == "remove":
            if item in oracle:
                idx.remove(*item)
                oracle.remove(item)
            else:
                with pytest.raises(KeyError):
                    idx.remove(*item)
        elif op == "select":
            if oracle:
                i = tie % len(oracle)
                assert idx.select(i) == oracle[i]
        else:
            assert idx.rank(*item) == sum(1 for x in oracle if x < item)
        assert len(idx) == len(oracle)
        assert (item in idx) == (item in oracle)
    assert list(idx) == oracle


# -- CompletionCalendar --------------------------------------------------


def test_calendar_min_and_invalidation():
    cal = CompletionCalendar()
    assert cal.min_quotient() == float("inf")
    cal.update(0, 5.0)
    cal.update(1, 3.0)
    assert cal.min_quotient() == 3.0
    cal.update(1, 7.0)  # supersede the old minimum
    assert cal.min_quotient() == 5.0
    cal.discard(0)
    assert cal.min_quotient() == 7.0
    assert cal.invalidations == 2
    assert len(cal) == 1
    cal.clear()
    assert cal.min_quotient() == float("inf")
    assert len(cal) == 0


def test_calendar_unchanged_update_is_noop():
    cal = CompletionCalendar()
    cal.update(4, 2.5)
    inv = cal.invalidations
    cal.update(4, 2.5)
    assert cal.invalidations == inv
    assert cal.min_quotient() == 2.5


def test_calendar_epoch_no_aliasing():
    """An entry from a job's earlier served lifetime must never satisfy
    a later lookup (discard + reinsert at a worse quotient)."""
    cal = CompletionCalendar()
    cal.update(0, 1.0)
    cal.discard(0)
    cal.update(0, 9.0)
    cal.update(1, 4.0)
    assert cal.min_quotient() == 4.0  # stale (1.0, job 0) must be skipped


def test_calendar_heap_stays_bounded():
    """Amortized compaction: churning one job's quotient for thousands
    of segments must not grow the heap with the event count."""
    cal = CompletionCalendar()
    for j in range(50):
        cal.update(j, 100.0 + j)
    for i in range(10_000):
        cal.update(i % 50, 1.0 + (i % 97) / 97.0)
    assert len(cal._heap) <= 64 + 4 * len(cal)
    live_min = min(q for _, q in cal._live.values())
    assert cal.min_quotient() == live_min


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["update", "discard", "min"]),
            st.integers(0, 7),
            st.floats(0.01, 100.0, allow_nan=False),
        ),
        max_size=100,
    )
)
def test_calendar_against_dense_min(ops):
    cal = CompletionCalendar()
    live: dict[int, float] = {}
    for op, job, q in ops:
        if op == "update":
            cal.update(job, q)
            live[job] = q
        elif op == "discard":
            cal.discard(job)
            live.pop(job, None)
        else:
            expect = min(live.values()) if live else float("inf")
            assert cal.min_quotient() == expect
        assert len(cal) == len(live)
    expect = min(live.values()) if live else float("inf")
    assert cal.min_quotient() == expect


# -- sparse_sum ----------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(
    n=st.integers(1, 1500),
    data=st.data(),
)
def test_sparse_sum_matches_numpy_pairwise(n, data):
    m = data.draw(st.integers(0, min(n, 40)))
    pos = sorted(
        data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=m, max_size=m, unique=True
            )
        )
    )
    val = data.draw(
        st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=m, max_size=m
        )
    )
    dense = np.zeros(n, dtype=float)
    for p, v in zip(pos, val):
        dense[p] = v
    assert sparse_sum(pos, val, n) == float(np.add.reduce(dense))


def test_sparse_sum_dense_vector_exact():
    """Fully dense input (every position set) must still match — this is
    the regime where numpy's 8-way unroll and tail handling matter."""
    rng = np.random.default_rng(3)
    for n in (1, 7, 8, 9, 127, 128, 129, 1000, 4096):
        v = rng.random(n) * 10.0
        assert sparse_sum(list(range(n)), v.tolist(), n) == float(
            np.add.reduce(v)
        )


def test_sparse_sum_empty():
    assert sparse_sum([], [], 100) == 0.0
