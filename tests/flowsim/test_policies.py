"""Tests for the baseline flow-level policies (SRPT, SJF, RR, FIFO, LAPS, SETF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import FIFO, LAPS, RoundRobin, SETF, SJF, SRPT, SWF
from repro.flowsim.policies import policy_by_name
from tests.conftest import make_trace


class TestRegistry:
    def test_known_names(self):
        for name in ["srpt", "sjf", "swf", "rr", "fifo", "laps", "setf", "drep", "drep-par"]:
            p = policy_by_name(name)
            assert p.name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            policy_by_name("mystery")

    def test_kwargs_forwarded(self):
        p = policy_by_name("laps", beta=0.25)
        assert p.beta == 0.25

    def test_clairvoyance_flags(self):
        assert SRPT().clairvoyant and SJF().clairvoyant
        assert not RoundRobin().clairvoyant
        assert not LAPS().clairvoyant
        assert not SETF().clairvoyant


class TestSJF:
    def test_static_priority_no_preemption_among_equal(self):
        # SJF uses total work: the long job keeps its core once the short
        # one is done even if a medium job arrived meanwhile
        trace = make_trace([1.0, 10.0, 2.0], releases=[0.0, 0.0, 0.5])
        r = simulate(trace, m=1, policy=SJF())
        # order: job0 (work 1) -> job2 (work 2) -> job1 (work 10)
        assert r.flow_times[0] == pytest.approx(1.0)
        assert r.flow_times[2] == pytest.approx(2.5)  # finishes at 3.0
        assert r.flow_times[1] == pytest.approx(13.0)

    def test_swf_is_sjf(self):
        trace = make_trace([3.0, 1.0])
        a = simulate(trace, m=1, policy=SJF())
        b = simulate(trace, m=1, policy=SWF())
        np.testing.assert_allclose(a.flow_times, b.flow_times)
        assert b.scheduler == "SWF"

    def test_srpt_beats_or_ties_sjf(self, small_random_trace):
        srpt = simulate(small_random_trace, 4, SRPT())
        sjf = simulate(small_random_trace, 4, SJF())
        assert srpt.mean_flow <= sjf.mean_flow * (1 + 1e-9)


class TestSRPTOptimality:
    def test_srpt_optimal_single_machine_vs_others(self, small_random_trace):
        """SRPT is optimal for mean flow on one machine — nothing beats it."""
        srpt = simulate(small_random_trace, 1, SRPT()).mean_flow
        for policy in (SJF(), FIFO(), RoundRobin(), SETF(), LAPS()):
            other = simulate(small_random_trace, 1, policy).mean_flow
            assert srpt <= other * (1 + 1e-9), policy.name

    def test_srpt_optimal_fully_parallel(self, small_parallel_trace):
        srpt = simulate(small_parallel_trace, 4, SRPT()).mean_flow
        for policy in (SWF(), RoundRobin(), FIFO()):
            other = simulate(small_parallel_trace, 4, policy).mean_flow
            assert srpt <= other * (1 + 1e-9), policy.name


class TestFIFOPathology:
    def test_big_job_blocks_small_ones(self):
        """The paper's motivating example: non-preemption hurts average flow."""
        works = [100.0] + [1.0] * 20
        releases = [0.0] + [1.0] * 20
        trace = make_trace(works, releases)
        fifo = simulate(trace, m=1, policy=FIFO()).mean_flow
        srpt = simulate(trace, m=1, policy=SRPT()).mean_flow
        assert fifo > 5 * srpt


class TestLAPS:
    def test_beta_one_equals_rr(self, small_random_trace):
        laps = simulate(small_random_trace, 4, LAPS(beta=1.0))
        rr = simulate(small_random_trace, 4, RoundRobin())
        np.testing.assert_allclose(laps.flow_times, rr.flow_times, rtol=1e-9)

    def test_serves_latest_arrivals(self):
        # beta=0.5 of 2 jobs -> only the later job is served
        trace = make_trace([4.0, 1.0], releases=[0.0, 1.0])
        r = simulate(trace, m=1, policy=LAPS(beta=0.5))
        # job1 arrives at 1, is served alone until done at 2 (flow 1);
        # job0 runs [0,1] and [2,5] -> flow 5
        np.testing.assert_allclose(r.flow_times, [5.0, 1.0])

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            LAPS(beta=0.0)
        with pytest.raises(ValueError):
            LAPS(beta=1.5)


class TestSETF:
    def test_serves_least_attained_first(self):
        trace = make_trace([3.0, 1.0], releases=[0.0, 1.0])
        r = simulate(trace, m=1, policy=SETF())
        # job0 attains 1 by t=1; job1 arrives with 0 attained and is served
        # until it catches up at 2 (both attained 1); job1 done at 2
        assert r.flow_times[1] == pytest.approx(1.0)
        assert r.flow_times[0] == pytest.approx(4.0)

    def test_identical_jobs_share(self):
        trace = make_trace([2.0, 2.0])
        r = simulate(trace, m=1, policy=SETF())
        np.testing.assert_allclose(r.flow_times, [4.0, 4.0])

    def test_work_conserving(self, small_random_trace):
        r = simulate(small_random_trace, 4, SETF())
        busy = r.extra["utilization"] * r.makespan * 4
        assert busy == pytest.approx(small_random_trace.total_work, rel=1e-6)

    def test_invalid_tol(self):
        with pytest.raises(ValueError):
            SETF(tie_tol=0.0)


class TestFullyParallelReductions:
    def test_srpt_gives_whole_machine_to_one_job(self):
        trace = make_trace(
            [8.0, 8.0], releases=[0.0, 0.0], mode=ParallelismMode.FULLY_PARALLEL, m=4
        )
        r = simulate(trace, m=4, policy=SRPT())
        # first job (tie broken by id) runs at rate 4: done at 2; second at 4
        np.testing.assert_allclose(sorted(r.flow_times), [2.0, 4.0])

    def test_rr_splits_machine(self):
        trace = make_trace(
            [8.0, 8.0], releases=[0.0, 0.0], mode=ParallelismMode.FULLY_PARALLEL, m=4
        )
        r = simulate(trace, m=4, policy=RoundRobin())
        np.testing.assert_allclose(r.flow_times, [4.0, 4.0])
