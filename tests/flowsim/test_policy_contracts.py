"""Generic contract tests run against every registered flow-level policy.

Any policy added to the registry automatically inherits these checks:
rates respect caps and capacity, views are not mutated, runs are
deterministic under a fixed seed, and every job finishes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import policy_by_name
from repro.flowsim.policies.base import ActiveView
from repro.workloads.traces import generate_trace

ALL_POLICIES = [
    "srpt",
    "sjf",
    "swf",
    "rr",
    "fifo",
    "laps",
    "setf",
    "mlf",
    "drep",
    "drep-par",
    "hdf",
    "wsrpt",
    "wdrep",
    "random-np",
]


@pytest.fixture(scope="module")
def seq_trace():
    return generate_trace(150, "finance", 0.6, 3, seed=71)


@pytest.fixture(scope="module")
def par_trace():
    return generate_trace(
        150, "finance", 0.6, 3, mode=ParallelismMode.FULLY_PARALLEL, seed=72
    )


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestPolicyContracts:
    def test_completes_sequential_trace(self, name, seq_trace):
        r = simulate(seq_trace, 3, policy_by_name(name), seed=1)
        assert np.isfinite(r.flow_times).all()

    def test_completes_parallel_trace(self, name, par_trace):
        r = simulate(par_trace, 3, policy_by_name(name), seed=1)
        assert np.isfinite(r.flow_times).all()

    def test_deterministic(self, name, seq_trace):
        a = simulate(seq_trace, 3, policy_by_name(name), seed=4)
        b = simulate(seq_trace, 3, policy_by_name(name), seed=4)
        np.testing.assert_array_equal(a.flow_times, b.flow_times)

    def test_flow_floor(self, name, seq_trace):
        r = simulate(seq_trace, 3, policy_by_name(name), seed=4)
        for spec, f in zip(seq_trace.jobs, r.flow_times):
            assert f >= spec.lower_bound(3) * (1 - 1e-7) - 1e-9

    def test_view_not_mutated(self, name):
        policy = policy_by_name(name)
        rng = np.random.default_rng(0)
        policy.reset(4, rng)
        if hasattr(policy, "set_weights"):
            policy.set_weights(np.ones(6))
        ids = np.arange(4, dtype=np.int64)
        remaining = np.array([3.0, 1.0, 2.0, 4.0])
        caps = np.ones(4)
        view = ActiveView(
            t=0.0,
            m=4,
            job_ids=ids,
            remaining=remaining.copy(),
            work=np.array([3.0, 1.0, 2.0, 4.0]),
            release=np.zeros(4),
            caps=caps.copy(),
        )
        for j in ids:
            policy.on_arrival(int(j), view)
        rates = policy.rates(view)
        np.testing.assert_array_equal(view.remaining, remaining)
        np.testing.assert_array_equal(view.caps, caps)
        assert (rates >= -1e-12).all()
        assert (rates <= caps + 1e-9).all()
        assert rates.sum() <= 4 + 1e-9
