"""Tests for changing-parallelism simulation in the flow-level engine.

The feature the paper declared "difficult" (Sec. V-A): flow-level
simulation where each job's usable parallelism follows its DAG's profile
instead of being constant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, spawn_tree, wide
from repro.dag.profile import ParallelismProfile
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import FIFO, RoundRobin, SRPT, DrepParallel
from repro.workloads.traces import Trace

PROFILED = FlowSimConfig(use_profiles=True)


def dag_trace(dags, releases=None, m=4):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestProfiledSingleJob:
    def test_chain_cannot_parallelize(self):
        """A sequential chain on many cores still takes its full work."""
        trace = dag_trace([chain(30, 1)])
        r = simulate(trace, 8, FIFO(), config=PROFILED)
        assert r.flow_times[0] == pytest.approx(30.0)

    def test_flat_mode_overestimates_chain(self):
        """Without profiles the DAG job gets cap m — physically wrong for
        a chain; the profile fixes it."""
        trace = dag_trace([chain(30, 1)])
        flat = simulate(trace, 8, FIFO())
        prof = simulate(trace, 8, FIFO(), config=PROFILED)
        assert flat.flow_times[0] < prof.flow_times[0]

    def test_single_job_runs_exactly_at_infinite_proc_speed(self):
        """With m >= max parallelism, a lone job finishes in exactly its
        span — the profile reproduces the infinite-processor schedule."""
        d = spawn_tree(3, 20)
        trace = dag_trace([d])
        r = simulate(trace, 16, FIFO(), config=PROFILED)
        assert r.flow_times[0] == pytest.approx(d.span, rel=1e-9)

    def test_limited_cores_between_span_and_work(self):
        d = wide(8, 40)
        trace = dag_trace([d])
        r = simulate(trace, 2, FIFO(), config=PROFILED)
        assert d.span <= r.flow_times[0] + 1e-9
        assert r.flow_times[0] <= d.work
        # with 2 cores the 8-wide phase is core-limited: at least W/2
        assert r.flow_times[0] >= d.work / 2 * (1 - 1e-9)

    def test_events_bounded_by_segments(self):
        d = spawn_tree(4, 10)
        trace = dag_trace([d])
        r = simulate(trace, 16, FIFO(), config=PROFILED)
        p = ParallelismProfile.from_dag(d)
        # one event per profile segment plus bookkeeping
        assert r.extra["events"] <= p.parallelism.size + 10


class TestProfiledMultiJob:
    def _trace(self):
        dags = [spawn_tree(3, 15), wide(6, 25), chain(60, 2), spawn_tree(2, 30)]
        return dag_trace(dags, releases=[0.0, 5.0, 10.0, 15.0])

    @pytest.mark.parametrize("policy_cls", [SRPT, RoundRobin, FIFO, DrepParallel])
    def test_all_complete_with_conservation(self, policy_cls):
        trace = self._trace()
        r = simulate(trace, 4, policy_cls(), seed=3, config=PROFILED)
        assert np.isfinite(r.flow_times).all()
        busy = r.extra["utilization"] * r.makespan * 4
        assert busy == pytest.approx(trace.total_work, rel=1e-6)

    def test_span_floor_respected(self):
        trace = self._trace()
        r = simulate(trace, 4, SRPT(), seed=3, config=PROFILED)
        for spec, f in zip(trace.jobs, r.flow_times):
            assert f >= spec.span * (1 - 1e-9)

    def test_profiles_never_beat_flat(self):
        """Profile caps only constrain; flat (cap=m) flow is a lower bound
        per instance under the same policy and seed for work-conserving
        policies."""
        trace = self._trace()
        flat = simulate(trace, 4, SRPT(), seed=3)
        prof = simulate(trace, 4, SRPT(), seed=3, config=PROFILED)
        assert prof.mean_flow >= flat.mean_flow * (1 - 1e-9)

    def test_profiled_closer_to_wsim_when_cores_exceed_parallelism(self):
        """With more cores than job parallelism, the flat simulator lets a
        single job absorb the whole machine (unrealistic); the profiled
        one matches the runtime simulator's ordering."""
        from repro.wsim.runtime import simulate_ws
        from repro.wsim.schedulers import CentralGreedyWS

        d = wide(4, 50)  # parallelism ~4
        trace = dag_trace([d], m=16)
        flat = simulate(trace, 16, FIFO())
        prof = simulate(trace, 16, FIFO(), config=PROFILED)
        real = simulate_ws(trace, 16, CentralGreedyWS(), seed=0)
        # flat thinks the job finishes in ~work/16; profile and runtime
        # agree it is span-limited
        assert flat.flow_times[0] < 0.7 * prof.flow_times[0]
        assert abs(prof.flow_times[0] - real.flow_times[0]) <= 0.35 * real.flow_times[0]
