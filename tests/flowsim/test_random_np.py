"""Tests for the RandomNonPreemptive null-control policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import DrepSequential, FIFO, SRPT
from repro.flowsim.policies.random_np import RandomNonPreemptive
from tests.conftest import make_trace


class TestNonPreemption:
    def test_started_job_runs_to_completion(self):
        """Segments: once a job receives service, it is served in every
        subsequent segment until it completes."""
        trace = make_trace(
            [5.0, 1.0, 1.0, 1.0], releases=[0.0, 0.5, 1.0, 1.5]
        )
        r = simulate(
            trace,
            1,
            RandomNonPreemptive(),
            seed=3,
            config=FlowSimConfig(record_segments=True),
        )
        served_spans: dict[int, list[float]] = {}
        for t0, t1, alloc in r.extra["segments"]:
            for j in alloc:
                served_spans.setdefault(j, []).append(t0)
        # contiguity: each job's service segments are back to back
        for j, starts in served_spans.items():
            flow = r.flow_times[j]
            total_span = trace.jobs[j].work  # rate 1 service
            assert flow == pytest.approx(
                (max(starts) - min(starts)) + (total_span - (max(starts) - min(starts)))
                + (min(starts) - trace.jobs[j].release),
                rel=1e-6,
            )

    def test_all_jobs_finish(self, small_random_trace):
        r = simulate(small_random_trace, 4, RandomNonPreemptive(), seed=1)
        assert np.isfinite(r.flow_times).all()

    def test_seed_changes_order(self):
        trace = make_trace([3.0, 3.0, 3.0])
        orders = set()
        for seed in range(12):
            r = simulate(trace, 1, RandomNonPreemptive(), seed=seed)
            orders.add(tuple(np.argsort(r.flow_times)))
        assert len(orders) > 1  # randomness visible


class TestNullControl:
    def test_as_bad_as_fifo_on_the_pathology(self):
        """The paper's giant-plus-burst example: random order without
        preemption strands small jobs just like FIFO; DREP does not."""
        works = [200.0] + [1.0] * 30
        releases = [0.0] + [1.0 + 0.1 * i for i in range(30)]
        trace = make_trace(works, releases)
        rand = np.mean(
            [
                simulate(trace, 1, RandomNonPreemptive(), seed=s).mean_flow
                for s in range(5)
            ]
        )
        fifo = simulate(trace, 1, FIFO()).mean_flow
        drep = np.mean(
            [simulate(trace, 1, DrepSequential(), seed=s).mean_flow for s in range(5)]
        )
        assert rand >= 0.5 * fifo  # same pathology class
        # the arrival coin flip rescues DREP (limited at m=1 where the
        # single processor still serves the backlog one at a time)
        assert drep <= 0.75 * rand

    def test_never_beats_srpt(self, small_random_trace):
        srpt = simulate(small_random_trace, 1, SRPT()).mean_flow
        rand = simulate(small_random_trace, 1, RandomNonPreemptive(), seed=0).mean_flow
        assert srpt <= rand * (1 + 1e-9)
