"""Tests for repro.flowsim.rates — allocation invariants (property-based)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowsim.rates import equal_split, priority_waterfill


class TestPriorityWaterfill:
    def test_serves_in_order(self):
        caps = np.array([1.0, 1.0, 1.0])
        rates = priority_waterfill(caps, np.array([2, 0, 1]), m=2)
        np.testing.assert_allclose(rates, [1.0, 0.0, 1.0])

    def test_partial_remainder(self):
        caps = np.array([4.0, 4.0])
        rates = priority_waterfill(caps, np.array([0, 1]), m=6)
        np.testing.assert_allclose(rates, [4.0, 2.0])

    def test_zero_capacity(self):
        caps = np.array([1.0, 1.0])
        rates = priority_waterfill(caps, np.array([0, 1]), m=0)
        np.testing.assert_allclose(rates, [0.0, 0.0])

    def test_bad_order_shape(self):
        with pytest.raises(ValueError):
            priority_waterfill(np.array([1.0, 1.0]), np.array([0]), m=1)


class TestEqualSplit:
    def test_plain_even_split(self):
        rates = equal_split(np.array([4.0, 4.0, 4.0]), m=6)
        np.testing.assert_allclose(rates, [2.0, 2.0, 2.0])

    def test_caps_bind_and_redistribute(self):
        # cap 1 job takes 1; the others split the remaining 5
        rates = equal_split(np.array([1.0, 8.0, 8.0]), m=6)
        np.testing.assert_allclose(rates, [1.0, 2.5, 2.5])

    def test_undersubscribed_saturates(self):
        rates = equal_split(np.array([1.0, 1.0]), m=8)
        np.testing.assert_allclose(rates, [1.0, 1.0])

    def test_mask_restricts(self):
        rates = equal_split(
            np.array([2.0, 2.0, 2.0]), m=2, mask=np.array([True, False, True])
        )
        np.testing.assert_allclose(rates, [1.0, 0.0, 1.0])

    def test_empty_mask(self):
        rates = equal_split(np.array([1.0]), m=2, mask=np.array([False]))
        np.testing.assert_allclose(rates, [0.0])

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(ValueError):
            equal_split(np.array([0.0, 1.0]), m=1)

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            equal_split(np.array([1.0, 1.0]), m=1, mask=np.array([True]))


caps_strategy = st.lists(
    st.floats(0.01, 64.0, allow_nan=False), min_size=1, max_size=40
)


@settings(max_examples=120, deadline=None)
@given(caps=caps_strategy, m=st.floats(0.0, 128.0))
def test_equal_split_invariants(caps, m):
    caps = np.array(caps)
    rates = equal_split(caps, m)
    assert (rates >= -1e-12).all()
    assert (rates <= caps + 1e-9).all()
    assert rates.sum() <= m + 1e-6
    # capacity is fully used whenever demand allows
    assert rates.sum() == pytest.approx(min(m, caps.sum()), rel=1e-6, abs=1e-6)


@settings(max_examples=120, deadline=None)
@given(caps=caps_strategy, m=st.floats(0.0, 128.0), seed=st.integers(0, 1000))
def test_waterfill_invariants(caps, m, seed):
    caps = np.array(caps)
    order = np.random.default_rng(seed).permutation(len(caps))
    rates = priority_waterfill(caps, order, m)
    assert (rates >= 0).all()
    assert (rates <= caps + 1e-12).all()
    assert rates.sum() <= m + 1e-9
    assert rates.sum() == pytest.approx(min(m, caps.sum()), rel=1e-9, abs=1e-9)
    # prefix property: a job is served only if everything ahead of it is
    # saturated
    seen_unsaturated = False
    for idx in order:
        if seen_unsaturated:
            assert rates[idx] == 0.0
        if rates[idx] < caps[idx] - 1e-12:
            seen_unsaturated = True


@settings(max_examples=60, deadline=None)
@given(caps=caps_strategy, m=st.floats(0.5, 64.0))
def test_equal_split_fairness(caps, m):
    """No unsaturated job gets less than another unsaturated job."""
    caps = np.array(caps)
    rates = equal_split(caps, m)
    unsat = rates < caps - 1e-9
    if unsat.sum() >= 2:
        vals = rates[unsat]
        assert vals.max() - vals.min() < 1e-6
