"""Tests for schedule segment recording and schedule-shape properties.

Segments give tests direct access to *what the scheduler did*, not just
aggregate flows — so policy-defining invariants (SRPT serves minimal
remaining, RR shares equally, FIFO never reorders) are asserted on the
actual schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import FIFO, RoundRobin, SRPT
from repro.workloads.traces import generate_trace
from tests.conftest import make_trace

RECORD = FlowSimConfig(record_segments=True)


def reconstruct_work(segments, n):
    done = np.zeros(n)
    for t0, t1, alloc in segments:
        for j, r in alloc.items():
            done[j] += (t1 - t0) * r
    return done


class TestRecording:
    def test_off_by_default(self):
        r = simulate(make_trace([1.0]), 1, FIFO())
        assert "segments" not in r.extra

    def test_segments_cover_schedule(self):
        trace = make_trace([3.0, 1.0], releases=[0.0, 1.0])
        r = simulate(trace, 1, SRPT(), config=RECORD)
        segs = r.extra["segments"]
        # contiguous, increasing, non-empty
        assert segs[0][0] == 0.0
        for (a0, a1, _), (b0, _, _) in zip(segs, segs[1:]):
            assert a1 == pytest.approx(b0)
            assert a1 > a0
        assert segs[-1][1] == pytest.approx(r.makespan)

    def test_work_reconstruction(self, small_random_trace):
        r = simulate(small_random_trace, 4, RoundRobin(), config=RECORD)
        done = reconstruct_work(r.extra["segments"], len(small_random_trace))
        works = np.array([j.work for j in small_random_trace.jobs])
        np.testing.assert_allclose(done, works, rtol=1e-6)

    def test_capacity_respected_in_every_segment(self, small_random_trace):
        r = simulate(small_random_trace, 4, RoundRobin(), config=RECORD)
        for _, _, alloc in r.extra["segments"]:
            assert sum(alloc.values()) <= 4 + 1e-9


class TestScheduleShape:
    def test_srpt_always_serves_minimal_remaining(self):
        trace = generate_trace(60, "finance", 0.6, 1, seed=9)
        r = simulate(trace, 1, SRPT(), config=RECORD)
        works = {j.job_id: j.work for j in trace.jobs}
        releases = {j.job_id: j.release for j in trace.jobs}
        remaining = dict(works)
        for t0, t1, alloc in r.extra["segments"]:
            served = set(alloc)
            active = {
                j
                for j, rem in remaining.items()
                if rem > 1e-9 and releases[j] <= t0 + 1e-12
            }
            if served and active:
                max_served_priority = max(remaining[j] for j in served)
                for j in active - served:
                    assert remaining[j] >= max_served_priority - 1e-6
            for j, rate in alloc.items():
                remaining[j] -= rate * (t1 - t0)

    def test_fifo_never_skips_earlier_job(self):
        trace = make_trace([5.0, 2.0, 2.0], releases=[0.0, 1.0, 2.0])
        r = simulate(trace, 1, FIFO(), config=RECORD)
        for t0, _, alloc in r.extra["segments"]:
            # job 0 present until done; it must be the one served
            if t0 < 5.0:
                assert set(alloc) == {0}

    def test_rr_equal_rates_among_unsaturated(self):
        trace = make_trace([4.0, 4.0, 4.0])
        r = simulate(trace, 2, RoundRobin(), config=RECORD)
        t0, t1, alloc = r.extra["segments"][0]
        rates = list(alloc.values())
        assert max(rates) - min(rates) < 1e-9
        assert sum(rates) == pytest.approx(2.0)
