"""Property tests: the SoA fast path ≡ the legacy object path, always.

The engine runs policies that implement the vectorized ``rates_array``
hook directly on its flat structure-of-arrays buffers;
``use_rates_array=False`` forces the same policies through the classic
``rates(ActiveView)`` path.  These tests generate random instances with
Hypothesis and require the two executions to agree *exactly* — per-job
flow times at full float precision, event/switch counters, and the
policy RNG end-state digest — for every policy that has the hook.

The golden tests pin both paths to a frozen fixture; this file pins them
to *each other* on inputs nobody hand-picked.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import policy_by_name
from repro.workloads.traces import Trace

DATA_DIR = Path(__file__).resolve().parents[1] / "data"
_spec = importlib.util.spec_from_file_location(
    "gen_goldens", DATA_DIR / "gen_goldens.py"
)
gen_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_goldens)

#: every policy implementing the vectorized hook, by mode it supports
HOOK_POLICIES_SEQ = ["srpt", "sjf", "fifo", "rr", "laps", "drep", "hdf", "wsrpt", "wdrep"]
HOOK_POLICIES_PAR = ["srpt", "swf", "rr", "laps", "drep-par"]

OBJECT_PATH = FlowSimConfig(use_rates_array=False)


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 14))
    m = draw(st.integers(1, 6))
    mode = draw(
        st.sampled_from([ParallelismMode.SEQUENTIAL, ParallelismMode.FULLY_PARALLEL])
    )
    releases = sorted(
        draw(
            st.lists(
                st.floats(0.0, 40.0, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    works = draw(
        st.lists(st.floats(0.1, 15.0, allow_nan=False), min_size=n, max_size=n)
    )
    jobs = []
    for i in range(n):
        w = float(works[i])
        span = w if mode is ParallelismMode.SEQUENTIAL else w / m
        jobs.append(
            JobSpec(job_id=i, release=float(releases[i]), work=w, span=span, mode=mode)
        )
    return Trace(jobs=jobs, m=m), m, mode


@settings(max_examples=60, deadline=None)
@given(
    inst=random_instance(),
    policy_idx=st.integers(0, max(len(HOOK_POLICIES_SEQ), len(HOOK_POLICIES_PAR)) - 1),
    seed=st.integers(0, 20),
)
def test_soa_path_equals_object_path(inst, policy_idx, seed):
    trace, m, mode = inst
    names = (
        HOOK_POLICIES_SEQ
        if mode is ParallelismMode.SEQUENTIAL
        else HOOK_POLICIES_PAR
    )
    policy = names[policy_idx % len(names)]
    soa = gen_goldens.run_flow_case(trace, m, policy, seed=seed)
    obj = gen_goldens.run_flow_case(trace, m, policy, seed=seed, config=OBJECT_PATH)
    assert soa == obj


@settings(max_examples=25, deadline=None)
@given(inst=random_instance(), k=st.sampled_from([1, 7, 1000]))
def test_soa_path_equals_object_path_under_check_k(inst, k):
    """Amortized-check settings must not reintroduce path divergence."""
    trace, m, mode = inst
    policy = "srpt"
    soa = gen_goldens.run_flow_case(
        trace, m, policy, seed=5, config=FlowSimConfig(check_every_k=k)
    )
    obj = gen_goldens.run_flow_case(
        trace,
        m,
        policy,
        seed=5,
        config=FlowSimConfig(check_every_k=k, use_rates_array=False),
    )
    assert soa == obj


def _perf_of(result) -> dict:
    return dict(result.extra.get("perf", {}))


def test_vectorized_hook_actually_engages():
    """A hook policy must run (mostly) without materializing views."""
    from repro.workloads.traces import generate_trace

    trace = generate_trace(150, "finance", 0.7, 4, seed=11)
    soa = simulate(trace, 4, policy_by_name("srpt"), seed=11)
    obj = simulate(
        trace, 4, policy_by_name("srpt"), seed=11, config=OBJECT_PATH
    )
    perf_soa, perf_obj = _perf_of(soa), _perf_of(obj)
    assert perf_soa.get("view_reuses", 0) > 0
    assert perf_obj.get("view_reuses", 0) == 0  # object path always builds
    assert perf_obj.get("view_builds", 0) > 0
    # and the answers still agree exactly
    assert soa.flow_times.tolist() == obj.flow_times.tolist()
    assert soa.extra["events"] == obj.extra["events"]


def test_timer_policies_fall_back_cleanly():
    """MLF/random-np have no hook: both configs take the object path and
    must agree trivially (guards the config plumbing, not the math)."""
    from repro.workloads.traces import generate_trace

    trace = generate_trace(80, "finance", 0.6, 4, seed=9)
    for policy in ("mlf", "setf", "random-np"):
        on = gen_goldens.run_flow_case(trace, 4, policy, seed=9)
        off = gen_goldens.run_flow_case(trace, 4, policy, seed=9, config=OBJECT_PATH)
        assert on == off, policy


def test_rates_array_default_raises():
    base = policy_by_name("mlf")
    with pytest.raises(NotImplementedError):
        base.rates_array(0.0, 4, None, None, None, None, None)
