"""Tests for resource augmentation in the flow-level engine (Sec. II).

Theorem 1.1 is a speed-augmentation result; the engine's ``speed`` knob
lets experiments compare DREP-at-speed-s against unit-speed baselines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import FIFO, SETF, DrepSequential, SRPT
from repro.workloads.traces import generate_trace
from tests.conftest import make_trace


class TestSpeedSemantics:
    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            FlowSimConfig(speed=0.0)
        with pytest.raises(ValueError):
            FlowSimConfig(speed=-1.0)

    def test_single_job_completes_s_times_faster(self):
        trace = make_trace([6.0])
        slow = simulate(trace, 1, FIFO(), config=FlowSimConfig(speed=1.0))
        fast = simulate(trace, 1, FIFO(), config=FlowSimConfig(speed=3.0))
        assert fast.flow_times[0] == pytest.approx(slow.flow_times[0] / 3.0)

    def test_idle_gaps_not_compressed(self):
        """Speed accelerates work, not arrivals: a late-released job still
        waits for its release."""
        trace = make_trace([2.0], releases=[10.0])
        r = simulate(trace, 1, FIFO(), config=FlowSimConfig(speed=4.0))
        assert r.makespan == pytest.approx(10.5)

    def test_faster_never_hurts_mean_flow(self, small_random_trace):
        flows = []
        for s in (1.0, 2.0, 4.0):
            r = simulate(
                small_random_trace, 4, SRPT(), config=FlowSimConfig(speed=s)
            )
            flows.append(r.mean_flow)
        assert flows[0] >= flows[1] >= flows[2]

    def test_utilization_accounts_processor_time(self):
        """At speed s, busy processor-time is total_work / s."""
        trace = make_trace([8.0, 8.0])
        r = simulate(trace, 2, FIFO(), config=FlowSimConfig(speed=2.0))
        busy = r.extra["utilization"] * r.makespan * 2
        assert busy == pytest.approx(16.0 / 2.0)

    def test_setf_timers_respect_speed(self):
        # two staggered jobs exercise the SETF catch-up timer under speed
        trace = make_trace([3.0, 1.0], releases=[0.0, 1.0])
        r = simulate(trace, 1, SETF(), config=FlowSimConfig(speed=2.0))
        # at speed 2: job0 attains 2 by t=1; job1 runs alone [1, 1.5]
        # finishing (work 1) before catching job0's level
        assert r.flow_times[1] == pytest.approx(0.5)
        assert r.flow_times[0] == pytest.approx(2.0)  # finishes at t=2


class TestTheorem11Flavor:
    def test_drep_with_4x_speed_beats_unit_speed_opt_proxy(self):
        """The empirical face of Theorem 1.1: DREP given 4x speed has
        total flow below the unit-speed near-optimal schedule (SRPT)."""
        trace = generate_trace(3000, "bing", 0.7, 8, seed=77)
        srpt_unit = simulate(trace, 8, SRPT(), seed=77)
        drep_fast = simulate(
            trace, 8, DrepSequential(), seed=77, config=FlowSimConfig(speed=4.0)
        )
        assert drep_fast.mean_flow <= srpt_unit.mean_flow

    def test_flow_decreases_monotonically_in_speed(self):
        trace = generate_trace(2000, "finance", 0.7, 4, seed=78)
        flows = [
            simulate(
                trace, 4, DrepSequential(), seed=78, config=FlowSimConfig(speed=s)
            ).mean_flow
            for s in (1.0, 2.0, 4.0)
        ]
        assert flows[0] > flows[1] > flows[2]
        # all jobs still complete and flows stay above the span bound
        assert np.all(np.array(flows) > 0)
