"""Interaction tests: speed augmentation combined with parallelism profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, spawn_tree
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import FIFO, SRPT, DrepParallel
from repro.workloads.traces import Trace


def dag_trace(dags, releases=None, m=4):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestSpeedTimesProfiles:
    def test_lone_job_scales_exactly(self):
        d = spawn_tree(3, 20)
        trace = dag_trace([d])
        base = simulate(trace, 16, FIFO(), config=FlowSimConfig(use_profiles=True))
        fast = simulate(
            trace, 16, FIFO(), config=FlowSimConfig(use_profiles=True, speed=2.0)
        )
        assert fast.flow_times[0] == pytest.approx(base.flow_times[0] / 2.0)

    def test_chain_at_speed(self):
        trace = dag_trace([chain(30, 1)])
        r = simulate(
            trace, 8, FIFO(), config=FlowSimConfig(use_profiles=True, speed=3.0)
        )
        assert r.flow_times[0] == pytest.approx(10.0)

    def test_breakpoints_respected_under_speed(self):
        """Profile breakpoints must land exactly even at non-unit speed:
        conservation and the span/speed floor both hold."""
        dags = [spawn_tree(3, 15), chain(40, 2), spawn_tree(2, 25)]
        trace = dag_trace(dags, releases=[0.0, 3.0, 6.0])
        for speed in (1.0, 2.5):
            cfg = FlowSimConfig(use_profiles=True, speed=speed)
            r = simulate(trace, 4, SRPT(), seed=1, config=cfg)
            busy = r.extra["utilization"] * r.makespan * 4
            assert busy == pytest.approx(trace.total_work / speed, rel=1e-6)
            for spec, f in zip(trace.jobs, r.flow_times):
                assert f >= spec.span / speed * (1 - 1e-9)

    def test_drep_parallel_with_both_knobs(self):
        dags = [spawn_tree(3, 10) for _ in range(6)]
        trace = dag_trace(dags, releases=[0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        cfg = FlowSimConfig(use_profiles=True, speed=2.0)
        r = simulate(trace, 4, DrepParallel(), seed=2, config=cfg)
        assert np.isfinite(r.flow_times).all()
        assert r.extra["switches"] <= 2 * 4 * len(trace)

    def test_min_flows_scaled_by_speed(self):
        trace = dag_trace([chain(30, 1)])
        r = simulate(
            trace, 2, FIFO(), config=FlowSimConfig(speed=3.0, use_profiles=True)
        )
        # with the profile the chain runs at rate 1 x speed: flow equals
        # the speed-adjusted lower bound, slowdown exactly 1
        assert r.flow_times[0] == pytest.approx(10.0)
        assert r.slowdowns[0] == pytest.approx(1.0, rel=1e-6)
