"""Streaming flowsim must be bit-for-bit the materialized engine.

``simulate_stream`` over a lazy stream, any ingest/harvest chunking,
with or without fault plans, must reproduce ``simulate`` on the
materialized trace exactly — flow times, counters, events, fault log.
This is the contract every later scale claim (10⁶-job runs in flat RAM)
stands on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.core.metrics import StreamingMetrics
from repro.faults.plan import random_crash_plan
from repro.flowsim import policy_by_name, simulate, simulate_stream
from repro.workloads.stream import generate_stream, stream_trace
from repro.workloads.traces import Trace, generate_trace

POLICIES = ["srpt", "fifo", "rr", "setf", "laps", "drep"]


def _assert_equivalent(dense, streamed):
    rebuilt = streamed.to_schedule_result()
    assert np.array_equal(rebuilt.flow_times, dense.flow_times)
    assert rebuilt.makespan == dense.makespan
    assert rebuilt.preemptions == dense.preemptions
    assert rebuilt.migrations == dense.migrations
    assert streamed.extra["events"] == dense.extra["events"]
    if dense.min_flows is not None:
        assert np.array_equal(rebuilt.min_flows, dense.min_flows)
    if dense.weights is None:
        assert rebuilt.weights is None
    else:
        assert np.array_equal(rebuilt.weights, dense.weights)


@pytest.mark.parametrize("policy_key", POLICIES)
def test_generated_trace_equivalence(policy_key):
    trace = generate_trace(300, "exponential", 0.7, 8, seed=5)
    dense = simulate(trace, 8, policy_by_name(policy_key), seed=5)
    streamed = simulate_stream(
        stream_trace(trace),
        8,
        policy_by_name(policy_key),
        seed=5,
        keep_flow_times=True,
    )
    _assert_equivalent(dense, streamed)


@pytest.mark.parametrize("ingest,harvest", [(1, 1), (7, 13), (1024, 50)])
def test_chunking_knobs_do_not_change_results(ingest, harvest):
    trace = generate_trace(200, "bing", 0.6, 4, seed=9)
    dense = simulate(trace, 4, policy_by_name("srpt"), seed=9)
    streamed = simulate_stream(
        stream_trace(trace),
        4,
        policy_by_name("srpt"),
        seed=9,
        keep_flow_times=True,
        ingest_chunk=ingest,
        harvest_every=harvest,
    )
    _assert_equivalent(dense, streamed)


def test_fully_lazy_generator_equivalence():
    """generate_stream -> engine with no trace ever materialized."""
    trace = generate_trace(250, "exponential", 0.8, 8, seed=3)
    dense = simulate(trace, 8, policy_by_name("drep"), seed=3)
    streamed = simulate_stream(
        generate_stream(250, "exponential", 0.8, 8, seed=3),
        8,
        policy_by_name("drep"),
        seed=3,
        keep_flow_times=True,
    )
    _assert_equivalent(dense, streamed)


@pytest.mark.parametrize("fault_seed", [0, 2])
def test_fault_plan_equivalence(fault_seed):
    trace = generate_trace(150, "finance", 0.7, 8, seed=11)
    plan = random_crash_plan(
        8, trace.horizon, seed=fault_seed, crash_rate=0.002, mttr=30.0
    )
    dense = simulate(trace, 8, policy_by_name("srpt"), seed=11, faults=plan)
    streamed = simulate_stream(
        stream_trace(trace),
        8,
        policy_by_name("srpt"),
        seed=11,
        keep_flow_times=True,
        faults=plan,
        ingest_chunk=37,
        harvest_every=53,
    )
    _assert_equivalent(dense, streamed)
    assert streamed.extra["faults"] == dense.extra["faults"]


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 14))
    m = draw(st.integers(1, 4))
    mode = draw(
        st.sampled_from(
            [ParallelismMode.SEQUENTIAL, ParallelismMode.FULLY_PARALLEL]
        )
    )
    releases = sorted(
        draw(
            st.lists(
                st.floats(0, 50, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    works = draw(
        st.lists(st.floats(0.1, 20, allow_nan=False), min_size=n, max_size=n)
    )
    jobs = []
    for i, (r, w) in enumerate(zip(releases, works)):
        span = w if mode is ParallelismMode.SEQUENTIAL else w / m
        jobs.append(
            JobSpec(job_id=i, release=r, work=w, span=span, mode=mode)
        )
    policy_key = draw(st.sampled_from(POLICIES))
    ingest = draw(st.integers(1, 8))
    harvest = draw(st.integers(1, 8))
    with_faults = draw(st.booleans())
    return Trace(jobs=jobs, m=m), m, policy_key, ingest, harvest, with_faults


@settings(max_examples=60, deadline=None)
@given(random_instance())
def test_property_streaming_equals_dense(case):
    trace, m, policy_key, ingest, harvest, with_faults = case
    plan = None
    if with_faults:
        plan = random_crash_plan(
            m, trace.horizon + 50.0, seed=1, crash_rate=0.01, mttr=10.0
        )
    dense = simulate(
        trace, m, policy_by_name(policy_key), seed=2, faults=plan
    )
    streamed = simulate_stream(
        stream_trace(trace),
        m,
        policy_by_name(policy_key),
        seed=2,
        keep_flow_times=True,
        ingest_chunk=ingest,
        harvest_every=harvest,
        faults=(
            random_crash_plan(
                m, trace.horizon + 50.0, seed=1, crash_rate=0.01, mttr=10.0
            )
            if with_faults
            else None
        ),
    )
    _assert_equivalent(dense, streamed)


def test_streaming_summary_matches_dense_summary():
    """Folded statistics agree with the dense arrays (not just kept ones)."""
    trace = generate_trace(400, "exponential", 0.7, 8, seed=13)
    dense = simulate(trace, 8, policy_by_name("srpt"), seed=13)
    streamed = simulate_stream(
        stream_trace(trace), 8, policy_by_name("srpt"), seed=13
    )
    sm = streamed.metrics
    assert sm.count == dense.n_jobs
    assert sm.mean_flow == pytest.approx(dense.mean_flow, rel=1e-12)
    assert sm.max_flow == float(dense.flow_times.max())
    assert sm.quantiles_exact  # 400 jobs < default reservoir
    assert sm.percentile(99) == pytest.approx(
        float(np.percentile(dense.flow_times, 99)), rel=1e-12
    )
    assert sm.mean_slowdown() == pytest.approx(
        float(dense.slowdowns.mean()), rel=1e-12
    )


def test_bring_your_own_metrics_accumulates_across_runs():
    sm = StreamingMetrics()
    for seed in (1, 2):
        simulate_stream(
            generate_stream(50, "exponential", 0.5, 4, seed=seed),
            4,
            policy_by_name("srpt"),
            seed=seed,
            metrics=sm,
        )
    assert sm.count == 100


def test_memory_stays_flat_with_job_count():
    """10x the jobs must not grow the Python heap peak (O(active-jobs)).

    The generator chunk and harvest cadence are pinned well below the
    job counts — at the defaults (65536/8192) a few-thousand-job run is
    bounded by n, not the knobs, and the ratio means nothing.
    """
    import tracemalloc

    def peak_of(n):
        stream = generate_stream(
            n, "exponential", 0.7, 8, seed=1, chunk_jobs=128
        )
        tracemalloc.start()
        try:
            simulate_stream(
                stream,
                8,
                policy_by_name("srpt"),
                seed=1,
                ingest_chunk=64,
                harvest_every=256,
            )
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    small = peak_of(300)
    big = peak_of(3000)
    assert big <= 1.25 * small, f"streaming heap grew {big / small:.2f}x"


def test_perf_counters_capture_memory():
    streamed = simulate_stream(
        generate_stream(100, "exponential", 0.6, 4, seed=2),
        4,
        policy_by_name("srpt"),
        seed=2,
    )
    perf = streamed.extra["perf"]
    assert perf.get("peak_rss_mb", 0) > 0
