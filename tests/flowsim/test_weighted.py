"""Tests for weighted flow time: JobSpec weights, metrics, HDF/WSRPT/WDrep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import HDF, WSRPT, DrepSequential, SRPT, WDrep
from repro.workloads.traces import Trace


def weighted_trace(works, weights, releases=None):
    releases = releases or [0.0] * len(works)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(w),
            span=float(w),
            mode=ParallelismMode.SEQUENTIAL,
            weight=float(wt),
        )
        for i, (w, r, wt) in enumerate(zip(works, releases, weights))
    ]
    return Trace(jobs=jobs, m=1)


class TestWeightField:
    def test_default_weight(self):
        j = JobSpec(job_id=0, release=0.0, work=1.0, span=1.0)
        assert j.weight == 1.0

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            JobSpec(job_id=0, release=0.0, work=1.0, span=1.0, weight=0.0)
        with pytest.raises(ValueError):
            JobSpec(job_id=0, release=0.0, work=1.0, span=1.0, weight=float("nan"))


class TestWeightedMetric:
    def test_weighted_mean(self):
        trace = weighted_trace([2.0, 2.0], weights=[1.0, 3.0])
        r = simulate(trace, 1, SRPT())
        # flows are 2 and 4 in some order; weighted mean uses the weights
        expected = float((r.weights * r.flow_times).sum() / r.weights.sum())
        assert r.weighted_mean_flow() == pytest.approx(expected)

    def test_unweighted_equals_mean(self):
        trace = weighted_trace([1.0, 2.0], weights=[1.0, 1.0])
        r = simulate(trace, 1, SRPT())
        assert r.weighted_mean_flow() == pytest.approx(r.mean_flow)


class TestHDF:
    def test_prefers_high_density(self):
        # equal work, job1 has weight 10: serve it first
        trace = weighted_trace([4.0, 4.0], weights=[1.0, 10.0])
        r = simulate(trace, 1, HDF())
        assert r.flow_times[1] == pytest.approx(4.0)
        assert r.flow_times[0] == pytest.approx(8.0)

    def test_unit_weights_reduce_to_sjf(self):
        from repro.flowsim.policies import SJF

        trace = weighted_trace([3.0, 1.0, 2.0], weights=[1.0, 1.0, 1.0])
        hdf = simulate(trace, 1, HDF())
        sjf = simulate(trace, 1, SJF())
        np.testing.assert_allclose(hdf.flow_times, sjf.flow_times)

    def test_improves_weighted_flow_over_srpt(self):
        # a heavy long job: SRPT deprioritizes it, HDF serves it first
        trace = weighted_trace([10.0, 1.0], weights=[100.0, 1.0])
        srpt = simulate(trace, 1, SRPT())
        hdf = simulate(trace, 1, HDF())
        assert hdf.weighted_mean_flow() < srpt.weighted_mean_flow()


class TestWSRPT:
    def test_dynamic_density_switches(self):
        # job0 (w=1, work 10) running; job1 (w=2, work 4) arrives: density
        # 2/4 > 1/10 -> preempt
        trace = weighted_trace([10.0, 4.0], weights=[1.0, 2.0], releases=[0.0, 1.0])
        r = simulate(trace, 1, WSRPT())
        assert r.flow_times[1] == pytest.approx(4.0)

    def test_unit_weights_reduce_to_srpt(self):
        trace = weighted_trace([3.0, 1.0, 5.0], weights=[1.0, 1.0, 1.0])
        w = simulate(trace, 1, WSRPT())
        s = simulate(trace, 1, SRPT())
        np.testing.assert_allclose(w.flow_times, s.flow_times)


class TestWDrep:
    def test_unit_weights_match_drep(self):
        from repro.workloads.traces import generate_trace

        trace = generate_trace(800, "finance", 0.6, 4, seed=91)
        wd = simulate(trace, 4, WDrep(), seed=91)
        # same coin-flip structure: preemptions only on arrivals, budget holds
        assert wd.preemptions <= 1.2 * 800
        assert np.isfinite(wd.flow_times).all()
        drep = simulate(trace, 4, DrepSequential(), seed=91)
        # statistically similar mean flow (same algorithm family)
        assert wd.mean_flow == pytest.approx(drep.mean_flow, rel=0.35)

    def test_heavy_weight_attracts_processors(self):
        """A high-weight job is picked up far more often on arrival."""
        got_processor = 0
        trials = 200
        for seed in range(trials):
            trace = weighted_trace(
                [50.0, 5.0], weights=[1.0, 20.0], releases=[0.0, 1.0]
            )
            r = simulate(trace, 1, WDrep(), seed=seed)
            # if job1 preempted job0 at its arrival, job1 finishes at ~6
            if r.flow_times[1] <= 5.5:
                got_processor += 1
        # switch probability = 20/21: nearly always
        assert got_processor >= 0.8 * trials

    def test_weighted_flow_improves_with_weights(self):
        """WDrep beats unweighted DREP on weighted mean flow when weights
        are informative (heavy weight on short jobs)."""
        rngs = np.random.default_rng(7)
        works = list(rngs.exponential(1.0, 400) + 0.05)
        releases = list(np.cumsum(rngs.exponential(0.4, 400)))
        weights = [100.0 if w < 0.5 else 1.0 for w in works]
        trace = weighted_trace(works, weights=weights, releases=releases)
        wd = np.mean(
            [simulate(trace, 2, WDrep(), seed=s).weighted_mean_flow() for s in range(5)]
        )
        ud = np.mean(
            [
                simulate(trace, 2, DrepSequential(), seed=s).weighted_mean_flow()
                for s in range(5)
            ]
        )
        assert wd <= ud * 1.05
