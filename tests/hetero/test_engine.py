"""Tests for the related-machines engine and its policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import ParallelismMode
from repro.hetero import (
    DrepRelated,
    FifoRelated,
    HeteroSimError,
    SrptRelated,
    simulate_hetero,
    two_class_machine,
    uniform_machine,
)
from repro.workloads.traces import generate_trace
from tests.conftest import make_trace

ALL_POLICIES = [SrptRelated, FifoRelated, DrepRelated]


class TestExactSchedules:
    def test_single_job_on_fast_processor(self):
        trace = make_trace([8.0])
        mach = two_class_machine(1, 1, fast=4.0, slow=1.0)
        for cls in ALL_POLICIES:
            r = simulate_hetero(trace, mach, cls(), seed=0)
            # all policies put the lone job on the fast core: 8/4 = 2
            assert r.flow_times[0] == pytest.approx(2.0), cls.__name__

    def test_identical_machine_matches_flowsim(self, small_random_trace):
        """On a uniform machine SRPT-rel equals flow-level SRPT."""
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import SRPT

        mach = uniform_machine(4)
        hetero = simulate_hetero(small_random_trace, mach, SrptRelated(), seed=0)
        flat = simulate(small_random_trace, 4, SRPT(), seed=0)
        np.testing.assert_allclose(hetero.flow_times, flat.flow_times, rtol=1e-6)

    def test_two_jobs_fast_and_slow(self):
        # SRPT-rel: smaller job gets the fast core
        trace = make_trace([4.0, 8.0])
        mach = two_class_machine(1, 1, fast=2.0, slow=1.0)
        r = simulate_hetero(trace, mach, SrptRelated(), seed=0)
        # job0 (4 work) on fast core: done at 2; job1 then takes fast core
        # with 8 - 2 = 6 left: 6/2 = 3 more -> done at 5
        assert r.flow_times[0] == pytest.approx(2.0)
        assert r.flow_times[1] == pytest.approx(5.0)


class TestInvariantsAndBudgets:
    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_all_complete_with_conservation(self, policy_cls, small_random_trace):
        mach = two_class_machine(2, 2, fast=3.0)
        r = simulate_hetero(small_random_trace, mach, policy_cls(), seed=1)
        assert np.isfinite(r.flow_times).all()
        busy = r.extra["utilization"] * r.makespan * mach.total_speed
        assert busy == pytest.approx(small_random_trace.total_work, rel=1e-6)

    def test_drep_preemptions_only_on_arrivals(self):
        n = 2000
        trace = generate_trace(n, "finance", 0.6, 4, seed=3, scale_work_with_m=False)
        mach = two_class_machine(2, 2)
        r = simulate_hetero(trace, mach, DrepRelated(), seed=3)
        # O(n) expected preemption budget carries over
        assert r.preemptions <= 1.2 * n

    def test_rejects_parallel_jobs(self):
        trace = generate_trace(
            10, "finance", 0.5, 2, mode=ParallelismMode.FULLY_PARALLEL, seed=0
        )
        with pytest.raises(ValueError, match="sequential"):
            simulate_hetero(trace, uniform_machine(2), SrptRelated())

    def test_empty_trace(self):
        trace = make_trace([])
        r = simulate_hetero(trace, uniform_machine(2), SrptRelated())
        assert r.n_jobs == 0

    def test_determinism(self, small_random_trace):
        mach = two_class_machine(1, 3)
        a = simulate_hetero(small_random_trace, mach, DrepRelated(), seed=9)
        b = simulate_hetero(small_random_trace, mach, DrepRelated(), seed=9)
        np.testing.assert_array_equal(a.flow_times, b.flow_times)


class TestHeterogeneityFindings:
    """The open problem's empirical shape (bench X11 at small scale)."""

    @pytest.fixture(scope="class")
    def setup(self):
        trace = generate_trace(
            1500, "bing", 0.6, 8, seed=7, scale_work_with_m=False
        )
        mach = two_class_machine(2, 6, fast=4.0, slow=1.0)
        return trace, mach

    def test_plain_drep_pays_for_obliviousness(self, setup):
        trace, mach = setup
        srpt = simulate_hetero(trace, mach, SrptRelated(), seed=7)
        drep = simulate_hetero(trace, mach, DrepRelated(), seed=7)
        assert drep.mean_flow > srpt.mean_flow  # speed-oblivious placement hurts

    def test_reseat_recovers_most_of_the_gap(self, setup):
        trace, mach = setup
        srpt = simulate_hetero(trace, mach, SrptRelated(), seed=7)
        plain = simulate_hetero(trace, mach, DrepRelated(), seed=7)
        reseat = simulate_hetero(trace, mach, DrepRelated(reseat=True), seed=7)
        assert reseat.mean_flow < plain.mean_flow
        gap_plain = plain.mean_flow - srpt.mean_flow
        gap_reseat = reseat.mean_flow - srpt.mean_flow
        assert gap_reseat <= 0.6 * gap_plain

    def test_uniform_machine_no_gap(self):
        """Control: on identical processors reseat changes nothing much."""
        trace = generate_trace(1000, "finance", 0.6, 4, seed=8, scale_work_with_m=False)
        mach = uniform_machine(4)
        plain = simulate_hetero(trace, mach, DrepRelated(), seed=8)
        reseat = simulate_hetero(trace, mach, DrepRelated(reseat=True), seed=8)
        assert reseat.mean_flow == pytest.approx(plain.mean_flow, rel=0.2)
