"""Property-based tests for the related-machines engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec
from repro.hetero import DrepRelated, FifoRelated, Machine, SrptRelated, simulate_hetero
from repro.workloads.traces import Trace

POLICIES = [SrptRelated, FifoRelated, DrepRelated]


@st.composite
def random_hetero_instance(draw):
    m = draw(st.integers(1, 4))
    speeds = draw(
        st.lists(st.floats(0.25, 8.0, allow_nan=False), min_size=m, max_size=m)
    )
    n = draw(st.integers(1, 10))
    releases = sorted(
        draw(st.lists(st.floats(0, 30.0), min_size=n, max_size=n))
    )
    works = draw(st.lists(st.floats(0.1, 15.0), min_size=n, max_size=n))
    jobs = [
        JobSpec(i, float(releases[i]), float(works[i]), float(works[i]))
        for i in range(n)
    ]
    return Trace(jobs=jobs, m=m), Machine(np.array(speeds))


@settings(max_examples=40, deadline=None)
@given(inst=random_hetero_instance(), pol=st.integers(0, len(POLICIES) - 1))
def test_hetero_invariants_random(inst, pol):
    trace, machine = inst
    result = simulate_hetero(trace, machine, POLICIES[pol](), seed=11)

    assert np.isfinite(result.flow_times).all()

    # flow floor: even the fastest processor needs work / s_max
    for spec, f in zip(trace.jobs, result.flow_times):
        assert f >= spec.work / machine.max_speed * (1 - 1e-7) - 1e-9

    # speed-weighted conservation
    busy = result.extra["utilization"] * result.makespan * machine.total_speed
    if result.makespan > 0:
        assert busy == pytest.approx(trace.total_work, rel=1e-6, abs=1e-6)

    # preemption budget for the DREP transplant
    if isinstance(POLICIES[pol](), DrepRelated):
        assert result.extra["switches"] <= 4 * machine.m * len(trace) + len(trace)


@settings(max_examples=20, deadline=None)
@given(inst=random_hetero_instance())
def test_faster_uniform_machine_never_hurts(inst):
    trace, machine = inst
    slow = simulate_hetero(trace, machine, SrptRelated(), seed=1)
    boosted = Machine(machine.speeds * 2.0)
    fast = simulate_hetero(trace, boosted, SrptRelated(), seed=1)
    assert fast.mean_flow <= slow.mean_flow * (1 + 1e-9)
