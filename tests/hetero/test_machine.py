"""Tests for repro.hetero.machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hetero.machine import (
    Machine,
    geometric_machine,
    two_class_machine,
    uniform_machine,
)


class TestMachine:
    def test_basic(self):
        m = Machine(np.array([1.0, 2.0, 4.0]))
        assert m.m == 3
        assert m.total_speed == 7.0
        assert m.max_speed == 4.0

    def test_by_speed_desc(self):
        m = Machine(np.array([1.0, 4.0, 2.0]))
        np.testing.assert_array_equal(m.by_speed_desc(), [1, 2, 0])

    def test_stable_ties(self):
        m = Machine(np.array([2.0, 2.0, 1.0]))
        np.testing.assert_array_equal(m.by_speed_desc(), [0, 1, 2])

    def test_invalid(self):
        with pytest.raises(ValueError):
            Machine(np.array([]))
        with pytest.raises(ValueError):
            Machine(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            Machine(np.array([[1.0]]))

    def test_describe(self):
        m = two_class_machine(2, 3, fast=4.0, slow=1.0)
        assert m.describe() == "2x4+3x1"


class TestFactories:
    def test_uniform(self):
        m = uniform_machine(4, speed=2.0)
        assert m.total_speed == 8.0
        with pytest.raises(ValueError):
            uniform_machine(0)

    def test_two_class(self):
        m = two_class_machine(1, 2, fast=3.0)
        assert m.m == 3
        assert m.max_speed == 3.0
        with pytest.raises(ValueError):
            two_class_machine(0, 0)

    def test_geometric(self):
        m = geometric_machine(3, ratio=2.0)
        np.testing.assert_allclose(sorted(m.speeds), [1.0, 2.0, 4.0])
        with pytest.raises(ValueError):
            geometric_machine(2, ratio=0.0)
