"""Edge-case tests for the related-machines matching helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hetero.engine import FREE, HeteroState
from repro.hetero.machine import Machine, two_class_machine
from repro.hetero.policies import _match


def make_state(speeds, remaining):
    machine = Machine(np.asarray(speeds, dtype=float))
    n = len(remaining)
    return HeteroState(
        machine=machine,
        assignment=np.full(machine.m, FREE, dtype=np.int64),
        remaining=dict(enumerate(map(float, remaining))),
        release=np.zeros(n),
        work=np.array(remaining, dtype=float),
    )


class TestMatch:
    def test_fewer_jobs_than_procs(self):
        state = make_state([4.0, 2.0, 1.0], [5.0])
        _match(state, [0])
        # job 0 on the fastest processor, others free
        assert state.assignment[0] == 0
        assert (state.assignment[1:] == FREE).all()

    def test_more_jobs_than_procs(self):
        state = make_state([2.0, 1.0], [5.0, 5.0, 5.0])
        _match(state, [2, 0, 1])
        assert state.assignment[0] == 2  # fastest proc -> first in order
        assert state.assignment[1] == 0
        # job 1 waits
        assert 1 not in set(state.assignment.tolist())

    def test_rematch_moves_job_between_procs(self):
        state = make_state([4.0, 1.0], [5.0, 5.0])
        _match(state, [0, 1])
        assert state.assignment[0] == 0 and state.assignment[1] == 1
        # priorities flip: job 1 now first
        _match(state, [1, 0])
        assert state.assignment[0] == 1 and state.assignment[1] == 0

    def test_stable_match_no_spurious_switches(self):
        state = make_state([4.0, 1.0], [5.0, 5.0])
        _match(state, [0, 1])
        switches_before = state.switches
        _match(state, [0, 1])  # identical matching
        assert state.switches == switches_before

    def test_one_processor_invariant_enforced(self):
        state = make_state([2.0, 1.0], [5.0])
        _match(state, [0])
        # rate_of raises if a job ever held two processors
        assert state.rate_of(0) == 2.0

    def test_speed_ties_stable(self):
        mach = two_class_machine(2, 0, fast=3.0)
        state = make_state(mach.speeds, [4.0, 4.0])
        _match(state, [0, 1])
        assert state.assignment[0] == 0 and state.assignment[1] == 1
