"""Tests for the drep-sim CLI (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig1_small(self, capsys):
        rc = main(["fig1", "--n-jobs", "150", "--m-values", "1", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SRPT" in out and "DREP" in out and "RR" in out
        assert "finance" in out

    def test_fig2_small(self, capsys):
        rc = main(
            ["fig2", "--n-jobs", "150", "--m-values", "1", "4", "--distribution", "bing"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SWF" in out and "bing" in out

    def test_fig3_small(self, capsys):
        rc = main(["fig3", "--n-jobs", "15", "--m", "2", "--loads", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "steal-first" in out and "admit-first" in out

    def test_preemptions(self, capsys):
        rc = main(["preemptions", "--n-jobs", "500", "--m", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "within_switch_bound" in out
        assert "True" in out

    def test_stats(self, capsys):
        rc = main(["stats", "--distribution", "bing", "--samples", "5000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cv" in out and "p99" in out

    def test_report(self, tmp_path, capsys):
        out_path = tmp_path / "r.md"
        rc = main(
            ["report", "--out", str(out_path), "--flow-jobs", "60", "--ws-jobs", "8"]
        )
        assert rc == 0
        assert out_path.exists()
        assert "Figure 3" in out_path.read_text()

    def test_hetero(self, capsys):
        rc = main(["hetero", "--n-jobs", "200", "--machine", "1x2+2x1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DREP-rel" in out and "1x2+2x1" in out

    def test_hetero_geometric_spec(self, capsys):
        rc = main(["hetero", "--n-jobs", "100", "--machine", "geometric:3:2"])
        assert rc == 0
        assert "reseat" in capsys.readouterr().out

    def test_figures(self, tmp_path, capsys):
        import json

        rows = [
            {"m": 1, "scheduler": "SRPT", "mean_flow": 1.0},
            {"m": 2, "scheduler": "SRPT", "mean_flow": 0.9},
        ]
        (tmp_path / "fig1x.json").write_text(json.dumps(rows))
        rc = main(["figures", "--results-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig1x.svg").exists()

    def test_figures_empty_dir(self, tmp_path):
        rc = main(["figures", "--results-dir", str(tmp_path)])
        assert rc == 1

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig9"])
