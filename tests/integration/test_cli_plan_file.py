"""CLI boundary validation for user-supplied fault-plan JSON files."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

VALID_PLAN = {
    "name": "userplan",
    "events": [
        {"kind": "crash", "t": 5.0, "duration": 10.0, "proc": 1},
        {"kind": "degrade", "t": 8.0, "duration": 4.0, "factor": 0.5},
    ],
}

FAULTS_ARGS = [
    "faults",
    "--n-jobs", "60",
    "--m", "4",
    "--policies", "drep",
    "--seed", "2",
]


def write_plan(tmp_path, payload, name="plan.json"):
    path = tmp_path / name
    path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
    return str(path)


class TestPlanFileValidation:
    def test_valid_plan_runs(self, tmp_path, capsys):
        path = write_plan(tmp_path, VALID_PLAN)
        rc = main([*FAULTS_ARGS, "--plan-file", path])
        assert rc == 0
        assert "userplan" in capsys.readouterr().out

    def test_malformed_json_exits_cleanly(self, tmp_path):
        path = write_plan(tmp_path, "{not json", name="bad.json")
        with pytest.raises(SystemExit, match="invalid plan"):
            main([*FAULTS_ARGS, "--plan-file", path])

    def test_unknown_event_kind_is_rejected(self, tmp_path):
        plan = {"name": "x", "events": [{"kind": "meltdown", "t": 1.0}]}
        path = write_plan(tmp_path, plan)
        with pytest.raises(SystemExit, match="invalid plan"):
            main([*FAULTS_ARGS, "--plan-file", path])

    def test_missing_file_is_a_structured_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read plan file"):
            main([*FAULTS_ARGS, "--plan-file", str(tmp_path / "nope.json")])

    def test_proc_out_of_range_for_m(self, tmp_path):
        plan = {
            "name": "bigproc",
            "events": [{"kind": "crash", "t": 1.0, "duration": 2.0, "proc": 7}],
        }
        path = write_plan(tmp_path, plan)
        with pytest.raises(SystemExit, match="bigproc"):
            main([*FAULTS_ARGS, "--plan-file", path])

    def test_duplicate_plan_names_are_rejected(self, tmp_path):
        a = write_plan(tmp_path, VALID_PLAN, name="a.json")
        b = write_plan(tmp_path, VALID_PLAN, name="b.json")
        with pytest.raises(SystemExit, match="duplicate plan name"):
            main([*FAULTS_ARGS, "--plan-file", a, b])
