"""Cross-engine conformance: the three simulators on shared instances.

The flow-level engine, the work-stealing runtime and the related-machines
engine model the same physics at different fidelities; where their
assumptions coincide, their outputs must agree (exactly or within the
runtime's discretization overheads).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import scale_trace
from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import FIFO, SRPT
from repro.hetero import SrptRelated, simulate_hetero, two_class_machine, uniform_machine
from repro.workloads.traces import Trace, attach_dags, generate_trace
from repro.wsim.runtime import simulate_ws
from repro.wsim.schedulers import CentralGreedyWS


class TestFlowVsHetero:
    def test_srpt_identical_on_uniform_machine(self, small_random_trace):
        flow = simulate(small_random_trace, 4, SRPT(), seed=0)
        het = simulate_hetero(small_random_trace, uniform_machine(4), SrptRelated(), seed=0)
        np.testing.assert_allclose(flow.flow_times, het.flow_times, rtol=1e-6)

    def test_speed_augmentation_equals_faster_machine(self, small_random_trace):
        """flowsim at speed s == hetero on a machine of m speed-s cores."""
        flow = simulate(
            small_random_trace, 4, SRPT(), seed=0, config=FlowSimConfig(speed=2.0)
        )
        het = simulate_hetero(
            small_random_trace, uniform_machine(4, speed=2.0), SrptRelated(), seed=0
        )
        np.testing.assert_allclose(flow.flow_times, het.flow_times, rtol=1e-6)


class TestWsimVsHetero:
    def test_sequential_chains_on_two_class_machine(self):
        """wsim with worker speeds vs the hetero engine on the same
        sequential-job instance: flows agree within discretization
        (wsim quantizes to steps and pays admissions)."""
        works = [120.0, 240.0, 180.0, 90.0, 150.0]
        releases = [0.0, 10.0, 20.0, 200.0, 210.0]
        specs_flow = [
            JobSpec(i, releases[i], works[i], works[i]) for i in range(len(works))
        ]
        trace_flow = Trace(jobs=specs_flow, m=2)
        dags = [chain(int(w), 1) for w in works]
        specs_dag = [
            JobSpec(
                i,
                releases[i],
                float(dags[i].work),
                float(dags[i].span),
                ParallelismMode.DAG,
                dag=dags[i],
            )
            for i in range(len(works))
        ]
        trace_dag = Trace(jobs=specs_dag, m=2)
        machine = two_class_machine(1, 1, fast=3.0, slow=1.0)

        het = simulate_hetero(trace_flow, machine, SrptRelated(), seed=1)
        # central-greedy wsim approximates work-conserving FIFO-ish
        # dispatch; compare only aggregate scale (schedulers differ), so
        # use the machine-capacity sanity: both drain all work
        ws = simulate_ws(
            trace_dag,
            2,
            CentralGreedyWS(),
            seed=1,
            speeds=np.array([3.0, 1.0]),
        )
        assert ws.extra["work_steps"] == pytest.approx(sum(works))
        busy = het.extra["utilization"] * het.makespan * machine.total_speed
        assert busy == pytest.approx(sum(works), rel=1e-6)
        # mean flows within the discretization/scheduling factor
        assert ws.mean_flow <= 3.0 * het.mean_flow + 10
        assert ws.mean_flow >= 0.5 * het.mean_flow


class TestFlowVsWsim:
    def test_fifo_sequential_jobs_agree_in_scale(self):
        base = generate_trace(
            60,
            "finance",
            0.5,
            2,
            seed=41,
            scale_work_with_m=False,
        )
        scaled = scale_trace(base, 200.0)
        dag = attach_dags(scaled, parallelism=1, seed=41)
        flow = simulate(dag, 2, FIFO(), seed=41, config=FlowSimConfig(use_profiles=True))
        ws = simulate_ws(dag, 2, CentralGreedyWS(), seed=41)
        # both are work-conserving FIFO-ish on sequential chains
        assert ws.mean_flow == pytest.approx(flow.mean_flow, rel=0.25)
