"""Error-injection tests: misbehaving plugins fail loudly, not silently.

Both engines accept user-supplied policies/schedulers; a buggy plugin
must produce a clear exception rather than a wrong result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowsim.engine import FlowSimError, simulate
from repro.flowsim.policies.base import ActiveView, Policy
from repro.wsim.runtime import WsimError, simulate_ws
from repro.wsim.schedulers.base import WsScheduler
from tests.conftest import make_trace


class TestFlowsimPluginErrors:
    def test_policy_exception_propagates(self):
        class Exploding(Policy):
            name = "boom"

            def rates(self, view: ActiveView) -> np.ndarray:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            simulate(make_trace([1.0]), 1, Exploding())

    def test_nan_rates_rejected(self):
        class NanRates(Policy):
            name = "nan"

            def rates(self, view: ActiveView) -> np.ndarray:
                return np.full(view.n, np.nan)

        with pytest.raises(FlowSimError):
            simulate(make_trace([1.0]), 1, NanRates())

    def test_zeno_timer_detected(self):
        class ZenoTimer(Policy):
            name = "zeno"

            def rates(self, view: ActiveView) -> np.ndarray:
                return np.zeros(view.n)  # never works...

            def next_timer(self, view: ActiveView) -> float:
                return view.t + 1e-12  # ...but always has a timer

        with pytest.raises(FlowSimError, match="events"):
            simulate(make_trace([1.0]), 1, ZenoTimer())

    def test_rates_of_wrong_dtype_handled(self):
        class IntRates(Policy):
            name = "intrates"

            def rates(self, view: ActiveView) -> np.ndarray:
                # integer dtype is fine — the engine casts
                return np.ones(view.n, dtype=np.int64)

        r = simulate(make_trace([2.0]), 1, IntRates())
        assert r.flow_times[0] == pytest.approx(2.0)


class TestWsimPluginErrors:
    def _trace(self):
        from repro.core.job import JobSpec, ParallelismMode
        from repro.dag.generators import chain
        from repro.workloads.traces import Trace

        d = chain(10, 1)
        return Trace(
            jobs=[
                JobSpec(0, 0.0, float(d.work), float(d.span), ParallelismMode.DAG, dag=d)
            ],
            m=2,
        )

    def test_scheduler_that_never_admits_stalls_loudly(self):
        class DoNothing(WsScheduler):
            name = "donothing"
            affinity = False

            def on_arrival(self, job):
                self.rt.active.append(job)  # active but never admitted

            def out_of_work(self, worker):
                self.idle(worker)

        with pytest.raises(WsimError, match="exceeded"):
            simulate_ws(self._trace(), 2, DoNothing())

    def test_scheduler_forgetting_active_breaks_completion(self):
        class ForgetsActive(WsScheduler):
            name = "forgets"
            affinity = False

            def on_arrival(self, job):
                pass  # violates the contract: job never enters rt.active

            def out_of_work(self, worker):
                self.idle(worker)

        # the runtime treats no-active as idle and jumps; with no future
        # arrivals it exits the loop and detects unfinished jobs
        with pytest.raises(WsimError, match="unfinished|exceeded"):
            simulate_ws(self._trace(), 2, ForgetsActive())

    def test_scheduler_exception_propagates(self):
        class Exploding(WsScheduler):
            name = "boom"

            def on_arrival(self, job):
                raise RuntimeError("boom")

            def out_of_work(self, worker):  # pragma: no cover
                pass

        with pytest.raises(RuntimeError, match="boom"):
            simulate_ws(self._trace(), 2, Exploding())

    def test_mug_with_nonempty_deque_rejected(self):
        """The runtime refuses a structurally invalid mugging."""
        from repro.wsim.runtime import WsRuntime
        from repro.wsim.schedulers import DrepWS
        from repro.wsim.structures import WsDeque

        rt = WsRuntime(self._trace(), 2, DrepWS(), seed=0)
        rt.scheduler.reset(rt)
        rt._admit_arrivals()
        job = rt.active[0]
        worker = rt.workers[0]
        worker.job = job
        dq = WsDeque(job=job, owner=worker.wid)
        dq.push_bottom((job, 0))
        worker.dq = dq
        # ensure a muggable victim exists
        assert any(d.muggable for d in job.deques)
        with pytest.raises(WsimError, match="non-empty deque"):
            rt.steal_within(worker, job)
