"""Small-scale integration runs of every paper experiment.

These are the benches' golden paths at tiny sizes: they assert the
*shape* claims of Sec. V rather than absolute values, so regressions in
any simulator or scheduler show up here before the (slower) bench runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    flow_policy_factories,
    run_flow_sweep,
    run_ws_sweep,
)
from repro.core.job import ParallelismMode


def flows_by(rows, key="m"):
    out: dict = {}
    for r in rows:
        out.setdefault(r["scheduler"], {})[r[key]] = r["mean_flow"]
    return out


@pytest.fixture(scope="module")
def fig1_rows():
    return run_flow_sweep(
        "finance",
        0.6,
        ParallelismMode.SEQUENTIAL,
        m_values=[1, 4, 16],
        n_jobs=3000,
        seed=21,
    )


@pytest.fixture(scope="module")
def fig2_rows():
    return run_flow_sweep(
        "bing",
        0.6,
        ParallelismMode.FULLY_PARALLEL,
        m_values=[1, 4, 16],
        n_jobs=3000,
        seed=22,
    )


class TestFig1Shape:
    def test_srpt_and_sjf_lead(self, fig1_rows):
        f = flows_by(fig1_rows)
        for m in [1, 4, 16]:
            assert f["SRPT"][m] <= f["DREP"][m] * (1 + 1e-9)
            assert f["SJF"][m] <= f["DREP"][m] * 1.2

    def test_drep_close_to_rr(self, fig1_rows):
        """The paper: 'DREP's performance is very close to RR's' (Fig. 1)."""
        f = flows_by(fig1_rows)
        for m in [1, 4, 16]:
            assert f["DREP"][m] <= f["RR"][m] * 1.6
            assert f["DREP"][m] >= f["RR"][m] * 0.6

    def test_gap_narrows_with_cores(self, fig1_rows):
        f = flows_by(fig1_rows)
        gap_1 = f["DREP"][1] / f["SRPT"][1]
        gap_16 = f["DREP"][16] / f["SRPT"][16]
        assert gap_16 <= gap_1 * 1.1


class TestFig2Shape:
    def test_within_paper_factors(self, fig2_rows):
        """'at most a factor of 3.25 compared to SRPT and less than 3
        compared to SJF' — we allow slack for the small sample."""
        f = flows_by(fig2_rows)
        for m in [1, 4, 16]:
            assert f["DREP"][m] <= 4.0 * f["SRPT"][m]
            assert f["DREP"][m] <= 3.5 * f["SWF"][m]

    def test_drep_converges_to_rr(self, fig2_rows):
        f = flows_by(fig2_rows)
        ratio_1 = f["DREP"][1] / f["RR"][1]
        ratio_16 = f["DREP"][16] / f["RR"][16]
        assert ratio_16 < ratio_1
        assert ratio_16 < 1.4

    def test_srpt_optimal(self, fig2_rows):
        f = flows_by(fig2_rows)
        for m in [1, 4, 16]:
            for name in ["SWF", "RR", "DREP"]:
                assert f["SRPT"][m] <= f[name][m] * (1 + 1e-9)


class TestFig3Shape:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ws_sweep(
            "finance",
            loads=[0.5, 0.7],
            m=4,
            n_jobs=120,
            mean_work_units=250,
            seed=23,
        )

    def test_drep_comparable_to_swf(self, rows):
        """The paper's headline: DREP is comparable with SWF in practice."""
        f = flows_by(rows, key="load")
        for load in [0.5, 0.7]:
            assert f["DREP"][load] <= 2.0 * f["SWF"][load]

    def test_drep_tracks_admit_first(self, rows):
        f = flows_by(rows, key="load")
        for load in [0.5, 0.7]:
            ratio = f["DREP"][load] / f["admit-first"][load]
            assert 0.5 <= ratio <= 2.0

    def test_flow_increases_with_load(self, rows):
        f = flows_by(rows, key="load")
        for name in f:
            assert f[name][0.7] > f[name][0.5] * 0.9


class TestCrossSimulatorConsistency:
    def test_flowsim_and_wsim_agree_on_scale(self):
        """The runtime simulator's flows exceed the idealized flow-level
        flows (it pays steal/preemption overheads) but stay in the same
        ballpark for the same instance."""
        from repro.analysis.experiments import scale_trace
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import DrepParallel
        from repro.workloads.traces import attach_dags, generate_trace
        from repro.wsim.runtime import simulate_ws
        from repro.wsim.schedulers import DrepWS

        base = generate_trace(
            n_jobs=80,
            distribution="finance",
            load=0.55,
            m=4,
            mode=ParallelismMode.FULLY_PARALLEL,
            seed=31,
            scale_work_with_m=False,
        )
        scaled = scale_trace(base, 300.0)
        dag_trace = attach_dags(scaled, parallelism=8, seed=31)
        ideal = simulate(dag_trace, 4, DrepParallel(), seed=31)
        real = simulate_ws(dag_trace, 4, DrepWS(), seed=31)
        assert real.mean_flow >= 0.8 * ideal.mean_flow
        assert real.mean_flow <= 8.0 * ideal.mean_flow
