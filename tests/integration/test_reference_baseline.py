"""Physics-regression guard: compare fresh runs against checked-in numbers.

The reference baseline (`tests/data/reference_baseline.json`) snapshots
headline metrics of fixed-seed runs for both simulators.  Any code change
that alters scheduling behaviour — even a "harmless" refactor — trips
this test.  Intentional behaviour changes must regenerate the file (see
the module docstring of `repro.analysis.baselines`).

Tolerances: 1e-9 relative for float metrics (identical code paths are
bit-stable; the epsilon absorbs platform-level libm differences), exact
for counters.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baselines import compare_to_baseline
from repro.analysis.experiments import scale_trace
from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import policy_by_name
from repro.workloads.traces import attach_dags, generate_trace
from repro.wsim.runtime import simulate_ws
from repro.wsim.schedulers import ws_scheduler_by_name

BASELINE = Path(__file__).resolve().parent.parent / "data" / "reference_baseline.json"


def test_flowsim_matches_reference():
    trace = generate_trace(500, "finance", 0.6, 4, seed=777)
    entries = {}
    for pol in ("srpt", "sjf", "rr", "fifo", "setf", "mlf", "drep"):
        r = simulate(trace, 4, policy_by_name(pol), seed=777)
        entries[f"flow/{pol}"] = {
            "mean_flow": r.mean_flow,
            "p99_flow": r.percentile(99),
            "preemptions": float(r.preemptions),
        }
    compared = compare_to_baseline(BASELINE, entries, rel_tol=1e-9)
    assert len(compared) == 21


def test_wsim_matches_reference():
    base = generate_trace(
        60,
        "bing",
        0.6,
        4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=778,
        scale_work_with_m=False,
    )
    dag = attach_dags(scale_trace(base, 250.0), parallelism=8, seed=778)
    entries = {}
    for sch in ("drep", "swf", "steal-first", "admit-first", "central-greedy"):
        r = simulate_ws(dag, 4, ws_scheduler_by_name(sch), seed=778)
        entries[f"ws/{sch}"] = {
            "mean_flow": r.mean_flow,
            "steal_attempts": float(r.steal_attempts),
            "muggings": float(r.muggings),
            "preemptions": float(r.preemptions),
        }
    compared = compare_to_baseline(BASELINE, entries, rel_tol=1e-9)
    assert len(compared) == 20
