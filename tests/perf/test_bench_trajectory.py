"""Bench suite + BENCH_<pr>.json trajectory round-trips, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    BENCH_CASES,
    load_trajectory,
    run_bench_suite,
    trajectory_entry,
    write_trajectory,
)

TINY = 0.01  # bench scale small enough for unit-test budgets


class TestBenchSuite:
    def test_case_names_are_frozen(self):
        # the trajectory is only comparable across PRs if these never
        # change; appending new cases is fine, renaming/removing is not
        assert [c.name for c in BENCH_CASES] == [
            "flowsim_srpt",
            "flowsim_rr",
            "flowsim_drep",
            "flowsim_profiled",
            "wsim_drep",
            "grid_sweep_w1",
            "grid_sweep_w4",
            "wsim_hetero",
            "wsim_grid_w1",
            "wsim_grid_auto",
            "autoscale",
            "flowsim_stream_1m",
            "flowsim_churn_10k",
            "flowsim_churn_10k_dense",
            "active_scaling",
            "calibration",
        ]

    def test_grid_cases_report_and_agree(self):
        by_name = {c.name: c for c in BENCH_CASES}
        rows = run_bench_suite(
            scale=TINY,
            repeats=1,
            cases=(by_name["grid_sweep_w1"], by_name["grid_sweep_w4"]),
        )
        w1, w4 = rows["grid_sweep_w1"], rows["grid_sweep_w4"]
        for row in (w1, w4):
            assert row["engine"] == "grid"
            assert row["events"] > 0
            assert row["perf"]["pool_tasks"] == 18  # 3 m × 3 policies × 2 reps
        # the determinism tripwire: both worker counts, identical answers
        assert w1["events"] == w4["events"]
        assert w1["mean_flow"] == w4["mean_flow"]
        assert w4["perf"]["pool_workers"] == 4

    def test_ws_grid_cases_report_and_agree(self):
        by_name = {c.name: c for c in BENCH_CASES}
        rows = run_bench_suite(
            scale=TINY,
            repeats=1,
            cases=(by_name["wsim_grid_w1"], by_name["wsim_grid_auto"]),
        )
        w1, auto = rows["wsim_grid_w1"], rows["wsim_grid_auto"]
        for row in (w1, auto):
            assert row["engine"] == "grid"
            assert row["events"] > 0
            assert row["perf"]["pool_tasks"] == 16  # 2 loads × 4 scheds × 2 reps
        # the wsim face of the determinism tripwire: any worker count,
        # identical answers ("auto" may resolve to 1 on a 1-core box,
        # which is exactly the serial fallback under test)
        assert w1["events"] == auto["events"]
        assert w1["mean_flow"] == auto["mean_flow"]
        assert auto["perf"]["pool_workers"] >= 1

    def test_wsim_hetero_case_stays_on_the_exactness_grid(self):
        by_name = {c.name: c for c in BENCH_CASES}
        rows = run_bench_suite(
            scale=0.05, repeats=1, cases=(by_name["wsim_hetero"],)
        )
        perf = rows["wsim_hetero"]["perf"]
        # dyadic speeds: the hetero macro path must never fall back
        # (as_dict drops zero-valued counters, hence the default)
        assert perf.get("exactness_fallbacks", 0) == 0
        assert perf["horizon_jumps"] > 0

    def test_runs_and_reports(self):
        rows = run_bench_suite(scale=TINY, repeats=1, cases=BENCH_CASES[:2])
        assert set(rows) == {"flowsim_srpt", "flowsim_rr"}
        for row in rows.values():
            assert row["wall_s"] > 0
            assert row["events"] > 0
            assert row["events_per_sec"] > 0
            assert row["mean_flow"] > 0

    def test_deterministic_event_counts(self):
        a = run_bench_suite(scale=TINY, repeats=1, cases=BENCH_CASES[:1])
        b = run_bench_suite(scale=TINY, repeats=2, cases=BENCH_CASES[:1])
        assert a["flowsim_srpt"]["events"] == b["flowsim_srpt"]["events"]
        assert a["flowsim_srpt"]["mean_flow"] == b["flowsim_srpt"]["mean_flow"]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_bench_suite(scale=0)
        with pytest.raises(ValueError):
            run_bench_suite(repeats=0)


class TestTrajectory:
    def test_round_trip(self, tmp_path):
        rows = run_bench_suite(scale=TINY, repeats=1, cases=BENCH_CASES[:1])
        entry = trajectory_entry(rows, pr=7, scale=TINY, repeats=1)
        write_trajectory(tmp_path / "BENCH_7.json", entry)
        loaded = load_trajectory(tmp_path)
        assert len(loaded) == 1
        assert loaded[0]["pr"] == 7
        assert loaded[0]["benches"]["flowsim_srpt"]["events"] > 0

    def test_ordered_by_pr_and_skips_garbage(self, tmp_path):
        for pr in (5, 2):
            write_trajectory(
                tmp_path / f"BENCH_{pr}.json",
                trajectory_entry({}, pr=pr, scale=1.0, repeats=1),
            )
        (tmp_path / "BENCH_9.json").write_text("{ truncated")
        loaded = load_trajectory(tmp_path)
        assert [e["pr"] for e in loaded] == [2, 5]

    def test_duplicate_pr_rejected(self, tmp_path):
        write_trajectory(
            tmp_path / "BENCH_3.json",
            trajectory_entry({}, pr=3, scale=1.0, repeats=1),
        )
        write_trajectory(
            tmp_path / "BENCH_03.json",
            trajectory_entry({}, pr=3, scale=1.0, repeats=1),
        )
        with pytest.raises(ValueError):
            load_trajectory(tmp_path)

    def test_discover_root_walks_up(self, tmp_path, monkeypatch):
        from repro.perf import discover_root

        root = tmp_path / "proj"
        deep = root / "a" / "b"
        deep.mkdir(parents=True)
        write_trajectory(
            root / "BENCH_1.json", trajectory_entry({}, pr=1, scale=1.0, repeats=1)
        )
        monkeypatch.chdir(deep)
        assert discover_root() == root
        # the old failure mode: load_trajectory() from a nested cwd
        # must find the files instead of silently returning []
        assert [e["pr"] for e in load_trajectory()] == [1]

    def test_discover_root_honors_project_markers(self, tmp_path, monkeypatch):
        from repro.perf import discover_root

        root = tmp_path / "proj"
        deep = root / "src" / "pkg"
        deep.mkdir(parents=True)
        (root / "pyproject.toml").write_text("[project]\n")
        monkeypatch.chdir(deep)
        assert discover_root() == root


class TestCli:
    def test_bench_writes_trajectory(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_2.json"
        rc = main(
            [
                "bench",
                "--scale",
                str(TINY),
                "--repeats",
                "1",
                "--cases",
                "flowsim_rr",
                "--pr",
                "2",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        entry = json.loads(out.read_text())
        assert entry["pr"] == 2
        assert set(entry["benches"]) == {"flowsim_rr"}
        assert "flowsim_rr" in capsys.readouterr().out

    def test_bench_rejects_unknown_case(self):
        from repro.cli import main

        assert main(["bench", "--cases", "nope"]) == 2

    def test_bench_scale_env_fallback(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", str(TINY))
        rc = main(["bench", "--repeats", "1", "--cases", "flowsim_srpt"])
        assert rc == 0
        assert f"scale={TINY:g}" in capsys.readouterr().out

    def _two_entries(self, tmp_path, old_events=100, new_events=100):
        old = trajectory_entry(
            {"flowsim_rr": {"wall_s": 0.2, "events": old_events}},
            pr=1, scale=1.0, repeats=1,
        )
        new = trajectory_entry(
            {"flowsim_rr": {"wall_s": 0.1, "events": new_events}},
            pr=2, scale=1.0, repeats=1,
        )
        return (
            write_trajectory(tmp_path / "BENCH_1.json", old),
            write_trajectory(tmp_path / "BENCH_2.json", new),
        )

    def test_bench_compare_paths(self, tmp_path, capsys):
        from repro.cli import main

        p_old, p_new = self._two_entries(tmp_path)
        rc = main(["bench", "--compare", str(p_old), str(p_new)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flowsim_rr" in out
        assert "2.00x" in out  # 0.2s -> 0.1s

    def test_bench_compare_pr_numbers(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        self._two_entries(tmp_path)
        monkeypatch.chdir(tmp_path)
        rc = main(["bench", "--compare", "1", "2"])
        assert rc == 0
        assert "2.00x" in capsys.readouterr().out

    def test_bench_compare_flags_changed_events(self, tmp_path, capsys):
        from repro.cli import main

        p_old, p_new = self._two_entries(tmp_path, old_events=100, new_events=999)
        rc = main(["bench", "--compare", str(p_old), str(p_new)])
        assert rc == 1  # events drift means semantics changed, not perf
        assert "EVENTS CHANGED" in capsys.readouterr().out

    def test_bench_compare_unknown_pr(self, tmp_path, monkeypatch):
        from repro.cli import main

        self._two_entries(tmp_path)
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit):
            main(["bench", "--compare", "1", "99"])
