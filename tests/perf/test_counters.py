"""PerfCounters semantics and the engines' counter wiring."""

from __future__ import annotations

import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim.engine import FlowSimConfig, simulate
from repro.flowsim.policies import SRPT, RoundRobin
from repro.perf.counters import PerfCounters
from repro.workloads.traces import Trace, generate_trace


class TestPerfCounters:
    def test_starts_empty(self):
        assert PerfCounters().as_dict() == {}

    def test_as_dict_drops_zero_fields(self):
        perf = PerfCounters()
        perf.rate_hits = 3
        assert perf.as_dict() == {"rate_hits": 3}

    def test_timing_accumulates(self):
        perf = PerfCounters()
        perf.start()
        perf.stop()
        perf.start()
        perf.stop()
        assert perf.wall_s >= 0
        perf.events = 10
        if perf.wall_s > 0:
            assert perf.events_per_sec() == pytest.approx(10 / perf.wall_s)

    def test_events_per_sec_none_before_timing(self):
        assert PerfCounters().events_per_sec() is None

    def test_stop_without_start_is_noop(self):
        perf = PerfCounters()
        perf.stop()
        assert perf.wall_s == 0.0


class TestFlowsimWiring:
    def test_result_carries_perf_snapshot(self):
        trace = generate_trace(50, "finance", 0.6, 2, seed=1)
        result = simulate(trace, 2, SRPT(), seed=1)
        perf = result.extra["perf"]
        assert perf["events"] == result.extra["events"]
        assert perf["wall_s"] > 0

    def test_stable_policy_reuses_rates(self):
        # every natural flowsim event changes the active set, so cache
        # hits show up under horizon-bounded stepping (the serve-layer
        # pattern): parked segments leave the composition untouched
        from repro.flowsim.engine import FlowStepper

        trace = generate_trace(30, "finance", 0.6, 2, seed=2)
        stepper = FlowStepper(2, RoundRobin(), seed=2)
        for spec in trace.jobs:
            stepper.add_job(spec)
        horizon = 0.0
        while stepper.n_completed < len(trace.jobs):
            stepper.step(horizon=horizon)
            horizon += 0.25
        perf = stepper.perf
        assert perf.rate_hits > 0
        assert perf.rate_misses > 0

    def test_unstable_policy_never_hits(self):
        trace = generate_trace(50, "finance", 0.6, 2, seed=3)
        result = simulate(trace, 2, SRPT(), seed=3)
        perf = result.extra["perf"]
        # SRPT's rates depend on remaining work, recomputed every event
        assert perf.get("rate_hits", 0) == 0

    def test_amortized_checks_accounted(self):
        trace = generate_trace(80, "finance", 0.6, 2, seed=4)
        fast = simulate(trace, 2, SRPT(), seed=4).extra["perf"]
        full = simulate(
            trace, 2, SRPT(), seed=4, config=FlowSimConfig(check_every_k=1)
        ).extra["perf"]
        assert fast.get("checks_skipped", 0) > 0
        assert full.get("checks_skipped", 0) == 0
        assert full["checks_run"] >= fast["checks_run"]


class TestWsimWiring:
    def test_horizon_counters_present(self):
        from repro.dag.generators import chain
        from repro.wsim.runtime import simulate_ws
        from repro.wsim.schedulers import DrepWS

        dag = chain(400, 100)
        jobs = [
            JobSpec(
                job_id=i,
                release=float(i * 11),
                work=float(dag.work),
                span=float(dag.span),
                mode=ParallelismMode.DAG,
                dag=dag,
            )
            for i in range(3)
        ]
        result = simulate_ws(Trace(jobs=jobs, m=2), 2, DrepWS(), seed=5)
        perf = result.extra["perf"]
        assert perf["events"] == int(result.makespan)
        assert perf.get("horizon_jumps", 0) > 0
        assert perf["horizon_steps_saved"] >= perf["horizon_jumps"]
        # integer weights and unit speeds sit on the exactness grid
        assert "exactness_fallbacks" not in perf

    def test_exactness_fallback_counted_off_grid(self):
        from repro.dag.generators import chain
        from repro.wsim.runtime import simulate_ws
        from repro.wsim.schedulers import DrepWS

        dag = chain(300, 100)
        jobs = [
            JobSpec(
                job_id=0,
                release=0.0,
                work=float(dag.work),
                span=float(dag.span),
                mode=ParallelismMode.DAG,
                dag=dag,
            )
        ]
        import numpy as np

        result = simulate_ws(
            Trace(jobs=jobs, m=2), 2, DrepWS(), seed=5,
            speeds=np.array([1.0, 1.0 / 3.0]),  # 1/3 is off the dyadic grid
        )
        perf = result.extra["perf"]
        assert perf.get("exactness_fallbacks", 0) > 0
        assert perf.get("horizon_jumps", 0) == 0
