"""Admission control: caps, load estimation and backpressure."""

from __future__ import annotations

import pytest

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)


def controller(**kwargs) -> AdmissionController:
    m = kwargs.pop("m", 4)
    return AdmissionController(AdmissionConfig(**kwargs), m)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_active=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_backlog=-1.0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_load=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(halflife=0.0)
        with pytest.raises(ValueError):
            AdmissionController(AdmissionConfig(), m=0)


class TestDecisions:
    def test_unlimited_accepts_everything(self):
        ctrl = controller()
        for k in range(100):
            assert ctrl.decide(
                t=float(k), work=5.0, active=k, backlog_work=5.0 * k
            ).accepted

    def test_queue_cap(self):
        ctrl = controller(max_active=3)
        assert ctrl.decide(0.0, 1.0, active=2, backlog_work=2.0).accepted
        decision = ctrl.decide(0.0, 1.0, active=3, backlog_work=3.0)
        assert decision is AdmissionDecision.SHED_QUEUE_FULL

    def test_backlog_cap_counts_offered_work(self):
        # backlog is in drain-time units: work / m
        ctrl = controller(max_backlog=10.0, m=2)
        assert ctrl.decide(0.0, work=1.0, active=1, backlog_work=18.0).accepted
        decision = ctrl.decide(0.0, work=5.0, active=1, backlog_work=18.0)
        assert decision is AdmissionDecision.SHED_BACKLOG

    def test_overload_shedding_kicks_in(self):
        ctrl = controller(max_load=0.9, halflife=10.0, m=1)
        # offered load 2.0: a work-1.0 job every 0.5 time units on m=1
        decisions = []
        t = 0.0
        for _ in range(200):
            ctrl.observe(t, 1.0)
            decisions.append(ctrl.decide(t, 1.0, active=0, backlog_work=0.0))
            t += 0.5
        assert decisions[-1] is AdmissionDecision.SHED_OVERLOAD
        # warm-up accepts a few before the estimator catches up
        assert decisions[0].accepted


class TestLoadEstimate:
    def test_converges_to_offered_load(self):
        ctrl = controller(halflife=20.0, m=4)
        # rate 2 jobs/unit, mean work 1.4 => rho = 2 * 1.4 / 4 = 0.7
        t = 0.0
        for _ in range(2000):
            ctrl.observe(t, 1.4)
            t += 0.5
        assert ctrl.load_estimate(t) == pytest.approx(0.7, rel=0.1)

    def test_decays_when_traffic_stops(self):
        ctrl = controller(halflife=5.0, m=1)
        t = 0.0
        for _ in range(100):
            ctrl.observe(t, 1.0)
            t += 1.0
        busy = ctrl.load_estimate(t)
        idle = ctrl.load_estimate(t + 50.0)  # ten half-lives later
        assert idle < busy / 500
        assert ctrl.load_estimate(t) == pytest.approx(busy)  # read-only

    def test_empty_estimator_is_zero(self):
        assert controller().load_estimate(123.0) == 0.0


class TestBackpressure:
    def test_monotone_in_queue_occupancy(self):
        ctrl = controller(max_active=10)
        values = [ctrl.backpressure(0.0, active=k) for k in range(0, 11, 2)]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] == 1.0

    def test_clamped_to_unit_interval(self):
        ctrl = controller(max_active=2)
        assert ctrl.backpressure(0.0, active=50) == 1.0

    def test_without_caps_falls_back_to_load(self):
        ctrl = controller(halflife=10.0, m=1)
        t = 0.0
        for _ in range(100):
            ctrl.observe(t, 2.0)
            t += 1.0
        assert 0.0 < ctrl.backpressure(t, active=0) <= 1.0


class TestCheckpoint:
    def test_state_roundtrip_preserves_estimate(self):
        ctrl = controller(max_active=7, max_load=0.9, halflife=12.0)
        t = 0.0
        for _ in range(50):
            ctrl.observe(t, 3.0)
            t += 0.25
        restored = AdmissionController.from_state_dict(ctrl.state_dict())
        assert restored.load_estimate(t) == ctrl.load_estimate(t)
        assert restored.config == ctrl.config
        assert restored.m == ctrl.m
