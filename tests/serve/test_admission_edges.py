"""Admission control at the boundaries: caps hit exactly, drain, zero cap."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.server import ServeConfig

from tests.serve.test_server import trace_config, with_server


class TestControllerBoundaries:
    def test_queue_exactly_at_cap_sheds(self):
        ctrl = AdmissionController(AdmissionConfig(max_active=3), m=2)
        assert ctrl.decide(0.0, 1.0, active=2, backlog_work=0.0).accepted
        d = ctrl.decide(0.0, 1.0, active=3, backlog_work=0.0)
        assert d is AdmissionDecision.SHED_QUEUE_FULL

    def test_backlog_boundary_is_inclusive(self):
        # (backlog + work) / m must STRICTLY exceed the cap to shed: a
        # job that fills the budget exactly still gets in
        ctrl = AdmissionController(AdmissionConfig(max_backlog=5.0), m=2)
        assert ctrl.decide(0.0, 4.0, active=0, backlog_work=6.0).accepted
        d = ctrl.decide(0.0, 4.0 + 1e-6, active=0, backlog_work=6.0)
        assert d is AdmissionDecision.SHED_BACKLOG

    def test_backpressure_saturates_at_cap(self):
        ctrl = AdmissionController(AdmissionConfig(max_active=4), m=1)
        assert ctrl.backpressure(0.0, active=0) == 0.0
        assert ctrl.backpressure(0.0, active=2) == pytest.approx(0.5)
        assert ctrl.backpressure(0.0, active=4) == 1.0
        assert ctrl.backpressure(0.0, active=9) == 1.0  # clamped

    def test_zero_capacity_config_rejected(self):
        with pytest.raises(ValueError, match="max_active"):
            AdmissionConfig(max_active=0)
        with pytest.raises(ValueError, match="max_backlog"):
            AdmissionConfig(max_backlog=0.0)
        with pytest.raises(ValueError, match="max_load"):
            AdmissionConfig(max_load=0.0)

    def test_state_roundtrip_preserves_estimator(self):
        ctrl = AdmissionController(
            AdmissionConfig(max_active=2, max_load=0.9, halflife=10.0), m=2
        )
        for t in (0.0, 1.0, 2.5):
            ctrl.observe(t, 3.0)
        clone = AdmissionController.from_state_dict(ctrl.state_dict())
        assert clone.load_estimate(5.0) == ctrl.load_estimate(5.0)
        assert clone.backpressure(5.0, 1) == ctrl.backpressure(5.0, 1)


class TestServerAtCap:
    def test_shed_then_drain_then_accept_again(self):
        async def scenario(client, server):
            # m=1, cap 2: the third submit at t=0 must shed
            for expect in (True, True, False):
                resp = await client.call(op="submit", work=1.0)
                assert resp["ok"]
                assert resp["accepted"] is expect
            shed = resp
            assert shed["decision"] == "shed_queue_full"
            assert shed["backpressure"] == 1.0
            # draining the queue reopens admission
            await client.call(op="advance", to=10.0)
            resp = await client.call(op="submit", work=1.0, release=10.0)
            assert resp["ok"] and resp["accepted"]
            stats = (await client.call(op="stats"))["stats"]
            assert stats["shed"] == 1
            assert stats["offered"] == 4
            assert stats["submitted"] == 3

        asyncio.run(
            with_server(trace_config(m=1, max_active=2), scenario)
        )

    def test_zero_pending_budget_sheds_every_request(self):
        # max_pending=0 is the degenerate "always overloaded" server: it
        # must answer (not hang, not drop) with an explicit overload
        async def scenario(client, server):
            for op in ("hello", "submit", "stats"):
                resp = await client.call(op=op, work=1.0)
                assert resp["ok"] is False
                assert resp["overloaded"] is True

        asyncio.run(with_server(trace_config(max_pending=0), scenario))

    def test_negative_pending_budget_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            ServeConfig(m=1, policy="drep", max_pending=-1)
