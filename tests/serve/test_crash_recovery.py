"""Kill -9 the serving process mid-workload; recovery must be bit-exact.

The server runs as a real subprocess with a write-ahead journal.  It is
SIGKILLed (no cleanup, no flush beyond the per-append one) partway
through a trace; a second process recovers from the same journal
directory, takes the rest of the trace, and its drained per-job flow
times must equal an uninterrupted run **bit for bit**.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve.server import ServeConfig
from repro.workloads.traces import generate_trace

REPO = Path(__file__).resolve().parents[2]

SERVE_ARGS = [
    "--m",
    "2",
    "--policy",
    "drep",
    "--seed",
    "7",
    "--port",
    "0",
    "--snapshot-every",
    "5",
]


def _spawn_server(journal_dir: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *SERVE_ARGS]
        + ["--journal-dir", str(journal_dir)],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    port = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        pytest.fail("server did not report a port")
    return proc, port


class _Client:
    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.rfile = self.sock.makefile("rb")

    def call(self, **request) -> dict:
        self.sock.sendall(json.dumps(request).encode() + b"\n")
        line = self.rfile.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    def close(self) -> None:
        self.rfile.close()
        self.sock.close()


def _submit_all(client: _Client, jobs) -> None:
    for spec in jobs:
        resp = client.call(op="submit", work=spec.work, release=spec.release)
        assert resp["ok"] and resp["accepted"], resp


@pytest.mark.slow
def test_sigkill_recovery_matches_uninterrupted_run(tmp_path):
    trace = generate_trace(40, "finance", 0.7, 2, seed=7)
    cut = 23

    # uninterrupted reference: same config, in-process
    config = ServeConfig(m=2, policy="drep", seed=7)
    ref = config.build_scheduler()
    for spec in trace.jobs:
        ref.advance_to(spec.release)
        ref.submit(work=spec.work, release=spec.release)
    ref_flows = ref.drain().flow_times

    journal_dir = tmp_path / "wal"
    proc, port = _spawn_server(journal_dir)
    try:
        client = _Client(port)
        _submit_all(client, trace.jobs[:cut])
    finally:
        # no shutdown, no flush — the hard way down
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    proc2, port2 = _spawn_server(journal_dir)
    try:
        client = _Client(port2)
        hello = client.call(op="hello")
        assert hello["recovered_entries"] > 0 or hello["journal_seq"] >= cut
        _submit_all(client, trace.jobs[cut:])
        done = client.call(op="drain", include_flows=True)
        assert done["ok"], done
        np.testing.assert_array_equal(
            np.asarray(done["flow_times"], dtype=float), ref_flows
        )
        client.call(op="shutdown")
    finally:
        if proc2.poll() is None:
            proc2.terminate()
        proc2.wait(timeout=30)
