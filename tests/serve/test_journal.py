"""RequestJournal: write-ahead semantics, rotation, torn-tail recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve.journal import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    JournalError,
    RequestJournal,
    read_journal,
    recover,
)
from repro.serve.server import ServeConfig
from repro.workloads.traces import generate_trace


def _config(**kw):
    defaults = dict(m=2, policy="drep", seed=7, port=0)
    defaults.update(kw)
    return ServeConfig(**defaults)


def _submit_entry(spec):
    return {
        "op": "submit",
        "work": spec.work,
        "span": spec.span,
        "mode": spec.mode.value,
        "weight": spec.weight,
        "release": spec.release,
    }


class TestAppendRecover:
    def test_empty_directory_recovers_to_nothing(self, tmp_path):
        sched, seq, replayed = recover(tmp_path)
        assert sched is None and seq == 0 and replayed == 0

    def test_journal_only_replay_is_bit_exact(self, tmp_path):
        trace = generate_trace(25, "finance", 0.7, 2, seed=3)
        config = _config()

        live = config.build_scheduler()
        with RequestJournal(tmp_path) as journal:
            for spec in trace.jobs:
                journal.append(_submit_entry(spec))
                live.advance_to(spec.release)
                live.submit(
                    work=spec.work,
                    span=spec.span,
                    mode=spec.mode,
                    weight=spec.weight,
                    release=spec.release,
                )
        recovered, seq, replayed = recover(
            tmp_path, build_empty=config.build_scheduler
        )
        assert seq == replayed == len(trace.jobs)
        np.testing.assert_array_equal(
            live.drain().flow_times, recovered.drain().flow_times
        )

    def test_snapshot_rotation_truncates_journal(self, tmp_path):
        trace = generate_trace(20, "finance", 0.7, 2, seed=1)
        config = _config()
        live = config.build_scheduler()
        journal = RequestJournal(tmp_path, snapshot_every=6)
        for spec in trace.jobs:
            journal.append(_submit_entry(spec))
            live.advance_to(spec.release)
            live.submit(
                work=spec.work,
                span=spec.span,
                mode=spec.mode,
                weight=spec.weight,
                release=spec.release,
            )
            journal.maybe_snapshot(live)
        journal.close()
        # 20 entries, snapshot every 6 -> journal holds only the tail
        assert len(read_journal(tmp_path)) < 6
        assert (tmp_path / SNAPSHOT_NAME).exists()
        recovered, seq, replayed = recover(tmp_path)
        assert seq == 20 and replayed < 6
        np.testing.assert_array_equal(
            live.drain().flow_times, recovered.drain().flow_times
        )

    def test_sequence_continues_across_reopen(self, tmp_path):
        with RequestJournal(tmp_path) as j:
            j.append({"op": "advance", "to": 1.0})
            j.append({"op": "advance", "to": 2.0})
        with RequestJournal(tmp_path) as j:
            assert j.seq == 2
            assert j.append({"op": "advance", "to": 3.0}) == 3


class TestCorruption:
    def test_torn_final_line_is_dropped(self, tmp_path):
        with RequestJournal(tmp_path) as j:
            j.append({"op": "advance", "to": 1.0})
            j.append({"op": "advance", "to": 2.0})
        path = tmp_path / JOURNAL_NAME
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 3, "op": "adva')  # the crash-torn append
        entries = read_journal(tmp_path)
        assert [e["seq"] for e in entries] == [1, 2]
        config = _config()
        recovered, seq, _ = recover(tmp_path, build_empty=config.build_scheduler)
        assert seq == 2
        assert recovered.now == pytest.approx(2.0)

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        lines = [
            json.dumps({"seq": 1, "op": "advance", "to": 1.0}),
            "NOT JSON AT ALL",
            json.dumps({"seq": 3, "op": "advance", "to": 3.0}),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            read_journal(tmp_path)

    def test_corrupt_snapshot_raises(self, tmp_path):
        (tmp_path / SNAPSHOT_NAME).write_text("{truncated")
        with pytest.raises(JournalError, match="corrupt snapshot"):
            recover(tmp_path)

    def test_failed_entries_replay_to_the_same_failure(self, tmp_path):
        # a submit into the past failed live; replay must skip it the
        # same way and keep the rest of the log effective
        with RequestJournal(tmp_path) as j:
            j.append({"op": "advance", "to": 10.0})
            j.append(
                {
                    "op": "submit",
                    "work": 1.0,
                    "span": 1.0,
                    "mode": "sequential",
                    "weight": 1.0,
                    "release": 2.0,  # in the past at replay time too
                }
            )
            j.append({"op": "advance", "to": 12.0})
        config = _config(m=1)
        recovered, seq, replayed = recover(
            tmp_path, build_empty=config.build_scheduler
        )
        assert seq == 3 and replayed == 3
        assert recovered.now == pytest.approx(12.0)
        assert recovered.n_submitted == 0
