"""Rolling metrics: windowing, percentiles and Prometheus exposition."""

from __future__ import annotations

import pytest

from repro.serve.metrics import RollingMetrics


class TestWindowing:
    def test_counts_and_mean(self):
        m = RollingMetrics(window=10.0)
        for t, f in [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]:
            m.on_complete(t, f)
        w = m.windowed(now=5.0)
        assert w["count"] == 3
        assert w["mean_flow"] == pytest.approx(4.0)
        assert w["max_flow"] == pytest.approx(6.0)

    def test_old_completions_fall_out(self):
        m = RollingMetrics(window=10.0)
        m.on_complete(1.0, 100.0)
        m.on_complete(50.0, 2.0)
        w = m.windowed(now=55.0)
        assert w["count"] == 1
        assert w["mean_flow"] == pytest.approx(2.0)
        # lifetime counter unaffected by pruning
        assert m.completed == 2

    def test_percentiles_ordered(self):
        m = RollingMetrics(window=1000.0)
        for i in range(100):
            m.on_complete(float(i), float(i))
        w = m.windowed(now=100.0)
        assert w["p50_flow"] <= w["p95_flow"] <= w["p99_flow"] <= w["max_flow"]

    def test_empty_window_is_zeroes(self):
        w = RollingMetrics(window=5.0).windowed(now=100.0)
        assert w["count"] == 0
        assert w["mean_flow"] == 0.0
        assert w["throughput"] == 0.0

    def test_throughput_clips_to_elapsed_time(self):
        # 4 completions in the first 2 time units; window is 100 but only
        # 2 units have elapsed, so throughput is 4/2 not 4/100
        m = RollingMetrics(window=100.0)
        for t in (0.5, 1.0, 1.5, 2.0):
            m.on_complete(t, 1.0)
        assert m.windowed(now=2.0)["throughput"] == pytest.approx(2.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            RollingMetrics(window=0.0)


class TestPrometheus:
    def test_exposition_format(self):
        m = RollingMetrics(window=50.0)
        m.on_submit(0.0)
        m.on_submit(1.0)
        m.on_shed(2.0)
        m.on_complete(3.0, 1.5)
        text = m.to_prometheus(now=4.0, active=1, backpressure=0.25)
        assert text.endswith("\n")
        lines = text.splitlines()
        samples = {
            line.split(" ")[0]: line.split(" ")[1]
            for line in lines
            if not line.startswith("#")
        }
        assert samples["drep_serve_jobs_submitted_total"] == "2"
        assert samples["drep_serve_jobs_shed_total"] == "1"
        assert samples["drep_serve_jobs_completed_total"] == "1"
        assert samples["drep_serve_active_jobs"] == "1"
        assert float(samples["drep_serve_flow_time_mean"]) == pytest.approx(1.5)
        assert float(samples["drep_serve_backpressure"]) == pytest.approx(0.25)
        assert 'drep_serve_flow_time{quantile="0.99"}' in text
        # every sample has HELP and TYPE headers
        for name in samples:
            base = name.split("{")[0]
            base = base.removesuffix("_sum").removesuffix("_count")
            assert any(
                line.startswith(f"# TYPE {base} ") for line in lines
            ), base

    def test_tenant_label_values_are_escaped(self):
        """Client-supplied tenant names must not break the exposition:
        backslash, double quote and newline are escaped per the
        Prometheus text format."""
        m = RollingMetrics(window=50.0)
        evil = 'bad"tenant\\with\nnewline'
        m.on_submit(0.0, tenant=evil)
        m.on_complete(1.0, 0.5, tenant=evil)
        text = m.to_prometheus(now=2.0)
        escaped = 'bad\\"tenant\\\\with\\nnewline'
        assert (
            f'drep_serve_tenant_jobs_total{{tenant="{escaped}",'
            f'outcome="submitted"}} 1'
        ) in text.splitlines()
        assert (
            f'drep_serve_tenant_flow_time_mean{{tenant="{escaped}"}} 0.5'
        ) in text.splitlines()
        # the raw name (embedded newline and all) must never appear
        assert evil not in text

    def test_counters_are_monotone_across_windows(self):
        m = RollingMetrics(window=1.0)
        m.on_complete(0.0, 1.0)
        m.windowed(now=100.0)  # prunes the deque
        text = m.to_prometheus(now=100.0)
        assert "drep_serve_jobs_completed_total 1" in text


class TestCheckpoint:
    def test_state_roundtrip(self):
        m = RollingMetrics(window=25.0)
        m.on_submit(0.0)
        m.on_complete(1.0, 3.0)
        m.on_shed(2.0)
        restored = RollingMetrics.from_state_dict(m.state_dict())
        assert restored.windowed(5.0) == m.windowed(5.0)
        assert (restored.submitted, restored.completed, restored.shed) == (
            1,
            1,
            1,
        )
