"""OnlineScheduler: submit-while-running semantics and batch equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import ParallelismMode
from repro.flowsim import FlowSimConfig, simulate
from repro.flowsim.policies import FIFO, SRPT, DrepSequential, RoundRobin
from repro.serve import AdmissionConfig, AdmissionController, RollingMetrics
from repro.serve.loadgen import effective_trace, replay_into
from repro.serve.online import OnlineScheduler
from repro.workloads.traces import generate_trace
from tests.conftest import make_trace


class TestBatchEquivalence:
    @pytest.mark.parametrize(
        "policy_cls", [DrepSequential, SRPT, RoundRobin, FIFO]
    )
    def test_replay_matches_simulate_bit_for_bit(self, policy_cls):
        trace = generate_trace(150, "finance", 0.7, 4, seed=9)
        offline = simulate(trace, 4, policy_cls(), seed=9)
        sched = OnlineScheduler(4, policy_cls(), seed=9)
        _, online = replay_into(sched, trace)
        np.testing.assert_array_equal(online.flow_times, offline.flow_times)
        assert online.makespan == offline.makespan
        assert online.extra["events"] == offline.extra["events"]
        assert online.preemptions == offline.preemptions

    def test_parallel_mode_equivalence(self):
        from repro.flowsim.policies import DrepParallel

        trace = generate_trace(
            100, "bing", 0.6, 8, mode=ParallelismMode.FULLY_PARALLEL, seed=4
        )
        offline = simulate(trace, 8, DrepParallel(), seed=4)
        sched = OnlineScheduler(8, DrepParallel(), seed=4)
        _, online = replay_into(sched, trace)
        np.testing.assert_array_equal(online.flow_times, offline.flow_times)

    def test_speed_config_carries_through(self):
        trace = generate_trace(60, "finance", 0.6, 2, seed=1)
        cfg = FlowSimConfig(speed=2.0)
        offline = simulate(trace, 2, SRPT(), seed=1, config=cfg)
        sched = OnlineScheduler(2, SRPT(), seed=1, config=cfg)
        _, online = replay_into(sched, trace)
        np.testing.assert_array_equal(online.flow_times, offline.flow_times)
        np.testing.assert_array_equal(online.min_flows, offline.min_flows)


class TestOnlineSemantics:
    def test_clock_advances_and_completes(self):
        sched = OnlineScheduler(1, FIFO(), seed=0)
        sched.submit(work=2.0)
        assert sched.now == 0.0
        sched.advance_to(1.0)
        assert sched.now == pytest.approx(1.0)
        assert sched.n_completed == 0
        sched.advance_to(3.0)
        assert sched.n_completed == 1
        assert sched.query(0)["state"] == "completed"
        assert sched.query(0)["flow_time"] == pytest.approx(2.0)

    def test_future_release_stays_pending(self):
        sched = OnlineScheduler(1, FIFO(), seed=0)
        sched.submit(work=1.0, release=5.0)
        assert sched.query(0)["state"] == "pending"
        assert sched.now == 0.0  # stamping a future job does not advance
        sched.advance_to(5.5)
        assert sched.query(0)["state"] == "running"

    def test_submit_in_past_rejected(self):
        sched = OnlineScheduler(1, FIFO(), seed=0)
        sched.advance_to(10.0)
        with pytest.raises(ValueError, match="past"):
            sched.submit(work=1.0, release=3.0)

    def test_clock_never_rewinds(self):
        sched = OnlineScheduler(1, FIFO(), seed=0)
        sched.advance_to(4.0)
        sched.advance_to(1.0)  # no-op, not an error
        assert sched.now == pytest.approx(4.0)

    def test_interleaved_submit_changes_schedule(self):
        # a job submitted mid-run must actually compete for the machine
        sched = OnlineScheduler(1, SRPT(), seed=0)
        sched.submit(work=10.0)
        sched.advance_to(1.0)
        sched.submit(work=1.0)  # shorter remaining => SRPT preempts
        sched.advance_to(2.5)
        assert sched.query(1)["state"] == "completed"
        assert sched.query(0)["state"] == "running"

    def test_drain_returns_full_result(self):
        sched = OnlineScheduler(2, DrepSequential(), seed=3)
        for w in (1.0, 2.0, 3.0):
            sched.submit(work=w)
        result = sched.drain()
        assert result.n_jobs == 3
        assert sched.drained
        assert result.scheduler == "DREP"
        assert not np.isnan(result.flow_times).any()

    def test_partial_result_mid_run(self):
        sched = OnlineScheduler(1, FIFO(), seed=0)
        sched.submit(work=1.0)
        sched.submit(work=5.0)
        sched.advance_to(1.5)
        partial = sched.result()
        assert partial.n_jobs == 1
        assert partial.flow_times[0] == pytest.approx(1.0)

    def test_stats_shape(self):
        sched = OnlineScheduler(
            2,
            FIFO(),
            metrics=RollingMetrics(window=100.0),
            admission=AdmissionController(AdmissionConfig(max_active=10), 2),
        )
        sched.submit(work=1.0)
        sched.advance_to(2.0)
        stats = sched.stats()
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["window"]["count"] == 1
        assert 0.0 <= stats["backpressure"] <= 1.0

    def test_sheds_when_queue_full(self):
        sched = OnlineScheduler(
            1,
            FIFO(),
            admission=AdmissionController(AdmissionConfig(max_active=2), 1),
            metrics=RollingMetrics(),
        )
        outcomes = [sched.submit(work=10.0) for _ in range(4)]
        assert [o.accepted for o in outcomes] == [True, True, False, False]
        assert sched.n_shed == 2
        assert sched.metrics.shed == 2
        # shed jobs never reach the engine
        assert sched.n_submitted == 2


class TestEffectiveTrace:
    def test_rate_multiplier_scales_releases(self):
        trace = make_trace([1.0, 1.0], releases=[0.0, 4.0])
        eff = effective_trace(trace, rate=2.0)
        assert eff.jobs[1].release == pytest.approx(2.0)
        assert eff.jobs[1].work == 1.0

    def test_rate_one_is_identity(self):
        trace = make_trace([1.0], releases=[0.0])
        assert effective_trace(trace, 1.0) is trace

    def test_bad_rate_rejected(self):
        trace = make_trace([1.0])
        with pytest.raises(ValueError):
            effective_trace(trace, 0.0)
