"""Property: online submit-as-you-go ≡ offline batch simulation.

For any seeded trace, streaming the jobs into
:class:`repro.serve.OnlineScheduler` at their release times (the serving
replay path) must produce exactly the per-job flow times of
:func:`repro.flowsim.simulate` — for the non-clairvoyant DREP (whose
randomness must line up draw-for-draw) as much as for deterministic
SRPT.  This is the pillar the whole serving layer rests on: live
results are comparable to every offline figure.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec
from repro.flowsim import simulate
from repro.flowsim.policies import SRPT, DrepSequential
from repro.serve.loadgen import replay_into
from repro.serve.online import OnlineScheduler
from repro.workloads.traces import Trace


@st.composite
def seeded_traces(draw) -> Trace:
    n = draw(st.integers(min_value=1, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=draw(st.floats(0.1, 3.0)), size=n)
    releases = np.concatenate(([0.0], np.cumsum(gaps)[:-1]))
    works = rng.lognormal(mean=0.0, sigma=1.0, size=n) + 1e-3
    jobs = [
        JobSpec(
            job_id=i,
            release=float(releases[i]),
            work=float(works[i]),
            span=float(works[i]),
        )
        for i in range(n)
    ]
    return Trace(jobs=jobs, m=1, load=0.0, distribution="hypothesis")


@settings(max_examples=40, deadline=None)
@given(
    trace=seeded_traces(),
    m=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
    policy_name=st.sampled_from(["drep", "srpt"]),
)
def test_online_equals_offline(trace, m, seed, policy_name):
    policies = {"drep": DrepSequential, "srpt": SRPT}
    offline = simulate(trace, m, policies[policy_name](), seed=seed)
    sched = OnlineScheduler(m, policies[policy_name](), seed=seed)
    _, online = replay_into(sched, trace)
    np.testing.assert_array_equal(online.flow_times, offline.flow_times)
    assert online.makespan == offline.makespan
    assert online.preemptions == offline.preemptions
    assert online.migrations == offline.migrations


@settings(max_examples=20, deadline=None)
@given(
    trace=seeded_traces(),
    cut=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=50),
)
def test_extra_advance_points_are_harmless(trace, cut, seed):
    """Parking the clock at an arbitrary horizon must not disturb flows.

    Horizon stops split constant-rate segments; the trajectory must stay
    within float tolerance of the uninterrupted run (and is typically
    bit-identical because progress is linear between events).
    """
    offline = simulate(trace, 2, DrepSequential(), seed=seed)
    sched = OnlineScheduler(2, DrepSequential(), seed=seed)
    horizon = cut * trace.jobs[-1].release
    for spec in trace.jobs:
        # an extra, arbitrary advance before each arrival's own advance
        if horizon < spec.release:
            sched.advance_to(horizon)
        sched.advance_to(spec.release)
        sched.submit_spec(spec)
    online = sched.drain()
    np.testing.assert_allclose(
        online.flow_times, offline.flow_times, rtol=1e-9, atol=1e-12
    )
