"""Hypothesis fuzz of the JSON-lines wire protocol.

Whatever bytes arrive — binary garbage, invalid JSON, valid JSON with
nonsense fields, oversized lines — the server must answer every line
with exactly one structured JSON response, keep the connection open,
and stay fully functional afterwards.
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.server import SchedulerServer, ServeConfig

MAX_LINE = 4096

_ops = st.sampled_from(
    ["hello", "submit", "advance", "query", "stats", "ping", "drain",
     "metrics", "snapshot", "nope", "", "SUBMIT", 42]
)
_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.lists(st.integers(min_value=0, max_value=9), max_size=3),
)
_json_line = st.fixed_dictionaries(
    {},
    optional={
        "op": _ops,
        "work": _values,
        "span": _values,
        "mode": _values,
        "weight": _values,
        "release": _values,
        "to": _values,
        "job_id": _values,
        "id": _values,
    },
).map(lambda d: json.dumps(d).encode())

_binary_line = st.binary(max_size=200).map(lambda b: b.replace(b"\n", b" "))

_oversized_line = st.just(b"x" * (MAX_LINE + 100))

_lines = st.lists(
    st.one_of(_binary_line, _json_line, _oversized_line), max_size=8
)


async def _run_lines(lines: list[bytes]) -> None:
    config = ServeConfig(
        m=2, policy="drep", seed=0, port=0, max_line_bytes=MAX_LINE
    )
    server = SchedulerServer(config)
    await server.start()
    try:
        reader, writer = await asyncio.open_connection(config.host, server.port)
        try:
            for line in lines:
                writer.write(line + b"\n")
                await writer.drain()
                raw = await asyncio.wait_for(reader.readline(), timeout=10)
                assert raw, f"connection dropped after {line[:60]!r}"
                response = json.loads(raw)
                assert isinstance(response, dict) and "ok" in response
                if not response["ok"]:
                    assert isinstance(response["error"], str)
            # the server must still be fully alive and consistent
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            pong = json.loads(await asyncio.wait_for(reader.readline(), 10))
            assert pong["ok"]
            writer.write(b'{"op": "stats"}\n')
            await writer.drain()
            stats = json.loads(await asyncio.wait_for(reader.readline(), 10))
            assert stats["ok"]
            srv = stats["stats"]["server"]
            for key in ("pending", "shed_requests", "timed_out_requests",
                        "bad_lines"):
                assert isinstance(srv[key], int) and srv[key] >= 0
            assert srv["pending"] == 0
        finally:
            writer.close()
    finally:
        await server.stop()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(lines=_lines)
def test_server_survives_arbitrary_lines(lines):
    asyncio.run(_run_lines(lines))


def test_known_nasty_lines_get_structured_errors():
    # the deterministic corner cases the fuzzer may not always hit
    nasty = [
        b"",  # empty line
        b"\xff\xfe\x00garbage",  # not UTF-8
        b"{not json",  # invalid JSON
        b"[1, 2, 3]",  # JSON but not an object
        b'"just a string"',
        b'{"op": null}',
        b'{"op": "submit", "work": "lots"}',  # bad field type
        b"x" * (MAX_LINE * 3),  # way past the line cap
        b'{"op": "advance"}',  # missing required field
    ]
    asyncio.run(_run_lines(nasty))
