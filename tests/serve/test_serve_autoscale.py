"""Elastic capacity in the serving tier: ticks, displacement, recovery."""

from __future__ import annotations

import json

import pytest

from repro.autoscale.guard import AutoscaleConfig
from repro.flowsim.policies import DrepSequential
from repro.serve.online import OnlineScheduler
from repro.serve.server import ServeConfig
from repro.serve.snapshot import restore_scheduler, snapshot_scheduler


def aconfig(**kw) -> AutoscaleConfig:
    base = dict(
        m_min=1,
        m_max=4,
        m_start=4,
        tick=5.0,
        up_watermark=20.0,
        down_watermark=8.0,
        cooldown_up=0.0,
        cooldown_down=0.0,
        requeue_delay=1.0,
    )
    base.update(kw)
    return AutoscaleConfig(**base)


def elastic_scheduler(**kw) -> OnlineScheduler:
    return OnlineScheduler(4, DrepSequential(), seed=21, autoscale=aconfig(**kw))


def burst(sched: OnlineScheduler, n: int = 6, work: float = 30.0) -> None:
    for _ in range(n):
        sched.submit(work=work)


class TestConstruction:
    def test_m_max_must_match_machine(self):
        with pytest.raises(ValueError, match="m_max"):
            OnlineScheduler(
                8, DrepSequential(), seed=0, autoscale=aconfig(m_max=4)
            )

    def test_starts_at_m_start(self):
        sched = elastic_scheduler(m_start=2)
        assert sched.m_effective == 2
        assert sched.autoscale is not None

    def test_plain_scheduler_has_no_autoscale(self):
        sched = OnlineScheduler(4, DrepSequential(), seed=0)
        assert sched.autoscale is None
        assert sched.m_effective == 4
        assert sched.autoscale_state_dict() is None


class TestTicking:
    def test_ticks_fire_at_exact_boundaries(self):
        sched = elastic_scheduler()
        burst(sched)
        # chunked advance must hit every multiple of tick exactly once
        for t in (3.0, 7.0, 12.5, 26.0):
            sched.advance_to(t)
        ticks = sched.stats()["autoscale"]["ticks"]
        assert ticks == 5  # t = 5, 10, 15, 20, 25

    def test_tick_schedule_independent_of_chunking(self):
        a = elastic_scheduler()
        b = elastic_scheduler()
        burst(a)
        burst(b)
        a.advance_to(40.0)
        for t in (1.0, 9.0, 17.3, 33.0, 40.0):
            b.advance_to(t)
        assert json.dumps(a.autoscale_state_dict(), default=str) == json.dumps(
            b.autoscale_state_dict(), default=str
        )

    def test_idle_system_scales_down(self):
        sched = elastic_scheduler()
        sched.advance_to(100.0)
        st = sched.stats()["autoscale"]
        assert st["m_current"] == 1
        assert st["scale_downs"] == 3

    def test_drain_keeps_ticking_to_completion(self):
        sched = elastic_scheduler(m_start=1)
        burst(sched, n=8)
        result = sched.drain()
        assert result.n_jobs == 8
        assert sched.stats()["autoscale"]["scale_ups"] >= 1

    def test_unreleased_future_work_is_invisible(self):
        sched = elastic_scheduler(m_start=1, up_watermark=10.0)
        # work stamped far in the future must not trigger scale-ups now
        for k in range(6):
            sched.submit(work=50.0, release=1000.0 + k)
        sched.advance_to(50.0)
        assert sched.stats()["autoscale"]["scale_ups"] == 0


class TestDisplacement:
    def scale_down_under_load(self):
        sched = elastic_scheduler(
            m_start=4, up_watermark=500.0, down_watermark=400.0
        )
        burst(sched, n=4, work=100.0)
        sched.advance_to(30.0)  # low signal → shed capacity mid-flight
        return sched

    def test_displaced_work_lands_in_requeue_log(self):
        sched = self.scale_down_under_load()
        st = sched.stats()["autoscale"]
        assert st["scale_downs"] >= 1
        assert st["displaced_work"] > 0
        assert st["requeues"] >= 1
        log = sched.stepper.requeue_log
        assert sum(r["redone_work"] for r in log) <= st["displaced_work"]

    def test_drain_closes_the_accounting(self):
        sched = self.scale_down_under_load()
        result = sched.drain()
        assert result.n_jobs == 4
        displaced = sched.stepper.displaced_work
        redone = sum(r["redone_work"] for r in sched.stepper.requeue_log)
        assert displaced == pytest.approx(redone)  # zero unaccounted

    def test_no_displace_config_parks_capacity_only(self):
        sched = elastic_scheduler(
            m_start=4,
            up_watermark=500.0,
            down_watermark=400.0,
            displace=False,
        )
        burst(sched, n=4, work=100.0)
        sched.advance_to(30.0)
        assert sched.stats()["autoscale"]["displaced_work"] == 0.0
        result = sched.drain()
        assert result.n_jobs == 4


class TestRecovery:
    def test_snapshot_round_trip_mid_burst(self):
        sched = elastic_scheduler(m_start=1)
        burst(sched)
        sched.advance_to(17.0)
        state = json.loads(json.dumps(snapshot_scheduler(sched)))
        restored = restore_scheduler(state)
        assert restored.m_effective == sched.m_effective
        assert json.dumps(
            restored.autoscale_state_dict(), default=str
        ) == json.dumps(sched.autoscale_state_dict(), default=str)

    def test_restored_scheduler_evolves_identically(self):
        sched = elastic_scheduler(m_start=1)
        burst(sched)
        sched.advance_to(17.0)
        restored = restore_scheduler(json.loads(json.dumps(snapshot_scheduler(sched))))
        for target in (sched, restored):
            target.submit(work=25.0)
            target.advance_to(60.0)
        assert json.dumps(sched.autoscale_state_dict(), default=str) == json.dumps(
            restored.autoscale_state_dict(), default=str
        )
        a = sched.drain()
        b = restored.drain()
        assert a.flow_times.tolist() == b.flow_times.tolist()
        assert sched.stats()["autoscale"] == restored.stats()["autoscale"]

    def test_journal_replay_reproduces_elastic_trajectory(self, tmp_path):
        """What a SIGKILL leaves behind — the journal — replays m(t) exactly."""
        from repro.serve.journal import RequestJournal, recover
        from repro.serve.server import ServeConfig

        config = ServeConfig(
            m=4,
            seed=21,
            autoscale=True,
            autoscale_m_min=1,
            autoscale_tick=5.0,
            autoscale_cooldown_up=0.0,
            autoscale_cooldown_down=0.0,
        )
        live = config.build_scheduler()
        entries = [
            {"op": "submit", "work": 30.0, "release": 0.0},
            {"op": "advance", "to": 12.0},
            {"op": "submit", "work": 30.0, "release": 12.0},
            {"op": "advance", "to": 31.0},
        ]
        with RequestJournal(tmp_path) as journal:
            for entry in entries:
                journal.append(entry)
                if entry["op"] == "submit":
                    live.advance_to(entry["release"])
                    live.submit(work=entry["work"], release=entry["release"])
                else:
                    live.advance_to(entry["to"])
        recovered, _, replayed = recover(
            tmp_path, build_empty=config.build_scheduler
        )
        assert replayed == len(entries)
        assert recovered.m_effective == live.m_effective
        assert json.dumps(
            recovered.autoscale_state_dict(), default=str
        ) == json.dumps(live.autoscale_state_dict(), default=str)
        a = live.drain().flow_times
        b = recovered.drain().flow_times
        assert a.tolist() == b.tolist()

    def test_pre_autoscale_snapshots_still_restore(self):
        plain = OnlineScheduler(4, DrepSequential(), seed=21)
        burst(plain)
        plain.advance_to(10.0)
        state = json.loads(json.dumps(snapshot_scheduler(plain)))
        state.pop("autoscale", None)  # a snapshot from before this feature
        restored = restore_scheduler(state)
        assert restored.autoscale is None
        assert restored.drain().n_jobs == 6


class TestServeConfig:
    def test_autoscale_off_by_default(self):
        assert ServeConfig(m=4).autoscale_config() is None

    def test_autoscale_config_mirrors_flags(self):
        cfg = ServeConfig(
            m=4,
            autoscale=True,
            autoscale_m_min=2,
            autoscale_tick=3.0,
            autoscale_up=50.0,
            autoscale_down=10.0,
            autoscale_displace=False,
        ).autoscale_config()
        assert cfg.m_min == 2 and cfg.m_max == 4
        assert cfg.m_start == 4  # cold start at full capacity
        assert cfg.tick == 3.0
        assert (cfg.up_watermark, cfg.down_watermark) == (50.0, 10.0)
        assert cfg.displace is False

    def test_build_scheduler_attaches_controller(self):
        sched = ServeConfig(m=4, autoscale=True).build_scheduler()
        assert sched.autoscale is not None
        assert sched.m_effective == 4
