"""SchedulerServer: wire protocol over a real socket, in-process."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.flowsim import simulate
from repro.flowsim.policies import DrepSequential
from repro.serve.server import SchedulerServer, ServeConfig
from repro.workloads.traces import generate_trace


class Client:
    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    async def call(self, **request) -> dict:
        return await self.send_raw(json.dumps(request).encode() + b"\n")

    async def send_raw(self, payload: bytes) -> dict:
        self.writer.write(payload)
        await self.writer.drain()
        line = await self.reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)


async def with_server(config: ServeConfig, fn):
    """Start a server on an ephemeral port, run ``fn(client, server)``."""
    server = SchedulerServer(config)
    await server.start()
    try:
        reader, writer = await asyncio.open_connection(
            config.host, server.port
        )
        try:
            return await fn(Client(reader, writer), server)
        finally:
            writer.close()
    finally:
        await server.stop()


def trace_config(**kwargs) -> ServeConfig:
    defaults = dict(m=2, policy="drep", seed=7, port=0, clock="trace")
    defaults.update(kwargs)
    return ServeConfig(**defaults)


class TestProtocol:
    def test_hello_identity(self):
        async def scenario(client, server):
            resp = await client.call(op="hello")
            assert resp["ok"]
            assert resp["service"] == "drep-serve"
            assert resp["m"] == 2
            assert resp["policy_key"] == "drep"
            assert resp["clock"] == "trace"
            assert resp["now"] == 0.0

        asyncio.run(with_server(trace_config(), scenario))

    def test_submit_advance_query_lifecycle(self):
        async def scenario(client, server):
            sub = await client.call(op="submit", work=2.0)
            assert sub["ok"] and sub["accepted"] and sub["job_id"] == 0
            q = await client.call(op="query", job_id=0)
            assert q["state"] == "pending"  # admitted at the next step
            await client.call(op="advance", to=1.0)
            q = await client.call(op="query", job_id=0)
            assert q["state"] == "running"
            assert q["remaining"] == pytest.approx(1.0)
            adv = await client.call(op="advance", to=5.0)
            assert adv["now"] == pytest.approx(5.0)
            q = await client.call(op="query", job_id=0)
            assert q["state"] == "completed"
            assert q["flow_time"] == pytest.approx(2.0)

        asyncio.run(with_server(trace_config(m=1), scenario))

    def test_request_id_echoed(self):
        async def scenario(client, server):
            resp = await client.call(op="ping", id="req-42")
            assert resp["ok"] and resp["id"] == "req-42"
            # echoed on errors too, so clients can correlate
            resp = await client.call(op="nope", id=7)
            assert not resp["ok"] and resp["id"] == 7

        asyncio.run(with_server(trace_config(), scenario))

    def test_stats_and_metrics(self):
        async def scenario(client, server):
            await client.call(op="submit", work=1.0)
            await client.call(op="advance", to=3.0)
            stats = (await client.call(op="stats"))["stats"]
            assert stats["submitted"] == 1
            assert stats["completed"] == 1
            metrics = await client.call(op="metrics")
            assert metrics["content_type"].startswith("text/plain")
            assert "drep_serve_jobs_completed_total 1" in metrics["text"]
            assert "drep_serve_backpressure" in metrics["text"]

        asyncio.run(
            with_server(trace_config(m=1, max_active=10), scenario)
        )

    def test_drained_flows_match_offline_simulate(self):
        trace = generate_trace(30, "finance", 0.7, 2, seed=7)
        offline = simulate(trace, 2, DrepSequential(), seed=7)

        async def scenario(client, server):
            for spec in trace.jobs:
                resp = await client.call(
                    op="submit", work=spec.work, release=spec.release
                )
                assert resp["accepted"], resp
            done = await client.call(op="drain", include_flows=True)
            assert done["ok"]
            assert done["result"]["n_jobs"] == 30
            np.testing.assert_array_equal(
                np.array(done["flow_times"]), offline.flow_times
            )

        asyncio.run(with_server(trace_config(), scenario))

    def test_shed_over_the_wire(self):
        async def scenario(client, server):
            outcomes = [
                (await client.call(op="submit", work=10.0))["accepted"]
                for _ in range(4)
            ]
            assert outcomes == [True, True, False, False]
            stats = (await client.call(op="stats"))["stats"]
            assert stats["shed"] == 2

        asyncio.run(with_server(trace_config(m=1, max_active=2), scenario))


class TestErrors:
    def test_malformed_and_invalid_requests(self):
        async def scenario(client, server):
            resp = await client.send_raw(b"this is not json\n")
            assert not resp["ok"] and "bad request" in resp["error"]
            resp = await client.send_raw(b"[1, 2, 3]\n")
            assert not resp["ok"]
            resp = await client.call(op="submit")  # missing work
            assert not resp["ok"] and "work" in resp["error"]
            resp = await client.call(op="query", job_id="zero")
            assert not resp["ok"]
            resp = await client.call(op="snapshot")  # no path configured
            assert not resp["ok"] and "path" in resp["error"]
            # the connection survives every error
            assert (await client.call(op="ping"))["ok"]

        asyncio.run(with_server(trace_config(), scenario))

    def test_submit_in_past_reported_not_fatal(self):
        async def scenario(client, server):
            await client.call(op="advance", to=10.0)
            resp = await client.call(op="submit", work=1.0, release=2.0)
            assert not resp["ok"] and "past" in resp["error"]
            assert (await client.call(op="ping"))["ok"]

        asyncio.run(with_server(trace_config(), scenario))


class TestLifecycle:
    def test_shutdown_op_stops_server(self):
        async def scenario():
            server = SchedulerServer(trace_config())
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.config.host, server.port
            )
            writer.write(b'{"op": "shutdown"}\n')
            await writer.drain()
            resp = json.loads(await reader.readline())
            assert resp["ok"] and resp["bye"]
            await asyncio.wait_for(server.wait_closed(), timeout=5.0)
            writer.close()

        asyncio.run(scenario())

    def test_snapshot_op_writes_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.json"

        async def scenario(client, server):
            await client.call(op="submit", work=3.0)
            resp = await client.call(op="snapshot", path=str(path))
            assert resp["ok"] and resp["path"] == str(path)

        asyncio.run(with_server(trace_config(m=1), scenario))
        state = json.loads(path.read_text())
        assert state["version"] == 1


class TestWallClock:
    def test_wall_clock_runs_jobs_in_real_time(self):
        # 100 sim-units per wall second: a work-0.5 job on one machine
        # completes after ~5ms of wall time
        config = trace_config(
            m=1, clock="wall", time_scale=100.0, tick=0.01
        )

        async def scenario(client, server):
            sub = await client.call(op="submit", work=0.5)
            assert sub["accepted"]
            deadline = asyncio.get_running_loop().time() + 5.0
            while True:
                q = await client.call(op="query", job_id=0)
                if q["state"] == "completed":
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            assert q["flow_time"] == pytest.approx(0.5)
            resp = await client.call(op="advance", to=1000.0)
            assert not resp["ok"]  # advance is a trace-clock op

        asyncio.run(with_server(config, scenario))
