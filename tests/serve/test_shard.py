"""Sharded serving tier: ring placement, seed discipline, merged replay.

Three pillars of :mod:`repro.serve.shard`:

* the consistent-hash ring is a pure function of ``(seed, names, key)``
  and removing one of N shards remaps only that shard's keys (~1/N of a
  fixed population) — checked as Hypothesis properties plus one pinned
  fraction test;
* shard 0 runs on the base seed (the pool's replicate-0 rule), so a
  one-shard router reproduces the serial :class:`OnlineScheduler` flow
  for flow;
* a sharded multi-tenant run drains to a merged report that is
  byte-identical across repeated runs with the same seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import derive_seed
from repro.flowsim.engine import FlowSimConfig
from repro.flowsim.policies import policy_by_name
from repro.serve.loadgen import tenant_labels
from repro.serve.online import OnlineScheduler
from repro.serve.shard import (
    HashRing,
    ShardRouter,
    build_local_router,
    shard_seed,
)
from repro.serve.tenancy import TenancyConfig
from repro.workloads.traces import generate_trace


def _names(n: int) -> list[str]:
    return [f"shard/{i}" for i in range(n)]


def _keys(n: int) -> list[str]:
    return [f"key-{i}" for i in range(n)]


# -- HashRing properties ---------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=1, max_value=8),
    vnodes=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_ring_placement_is_deterministic(seed, n, vnodes):
    """Two independently built rings agree on every key."""
    a = HashRing(_names(n), seed=seed, vnodes=vnodes)
    b = HashRing(list(_names(n)), seed=seed, vnodes=vnodes)
    keys = _keys(100)
    assert [a.route(k) for k in keys] == [b.route(k) for k in keys]


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=2, max_value=6),
    drop_raw=st.integers(min_value=0, max_value=97),
)
@settings(max_examples=40, deadline=None)
def test_removing_a_shard_moves_only_its_own_keys(seed, n, drop_raw):
    """Keys not owned by the dropped shard stay exactly where they were."""
    ring = HashRing(_names(n), seed=seed, vnodes=32)
    drop = _names(n)[drop_raw % n]
    smaller = ring.without(drop)
    for key in _keys(150):
        before = ring.route(key)
        after = smaller.route(key)
        if before == drop:
            assert after != drop
        else:
            assert after == before


def test_removal_remaps_about_one_nth_of_keys():
    """Dropping 1 of 4 shards moves ~1/4 of a fixed key population."""
    ring = HashRing(_names(4), seed=0, vnodes=64)
    keys = _keys(2000)
    owners = {k: ring.route(k) for k in keys}
    smaller = ring.without("shard/1")
    moved = [k for k in keys if smaller.route(k) != owners[k]]
    # exactly the dropped shard's keys move ...
    assert set(moved) == {k for k in keys if owners[k] == "shard/1"}
    # ... and with 64 vnodes that arc is close to its fair 1/4 share
    assert 0.10 <= len(moved) / len(keys) <= 0.45


def test_ring_rejects_bad_construction():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["a", "a"])
    with pytest.raises(ValueError):
        HashRing(["a"], vnodes=0)
    with pytest.raises(KeyError):
        HashRing(["a", "b"]).without("c")


# -- seed discipline -------------------------------------------------------


def test_shard_seed_discipline():
    """Shard 0 keeps the base seed; others derive distinct streams."""
    assert shard_seed(123, 0) == 123
    assert shard_seed(123, 3) == derive_seed(123, "shard/3")
    seeds = [shard_seed(7, i) for i in range(6)]
    assert len(set(seeds)) == len(seeds)


# -- router runs -----------------------------------------------------------


def _submit_trace(router, jobs, tenants=None):
    for i, spec in enumerate(jobs):
        router.submit(
            work=spec.work,
            span=spec.span,
            release=spec.release,
            tenant=None if tenants is None else tenants[i],
        )


def test_one_shard_router_matches_serial_scheduler():
    """``--shards 1`` is the serial reference, flow for flow."""
    jobs = generate_trace(60, "finance", 0.7, 4, seed=9).jobs
    with build_local_router(1, m=4, policy="drep", seed=9) as router:
        _submit_trace(router, jobs)
        merged = router.drain()

    serial = OnlineScheduler(
        m=4,
        policy=policy_by_name("drep"),
        seed=9,
        config=FlowSimConfig(speed=1.0, max_events=None),
    )
    for spec in jobs:
        serial.submit(work=spec.work, span=spec.span, release=spec.release)
    result = serial.drain()

    assert merged["accepted"] == len(jobs)
    assert merged["flow_times"] == [float(f) for f in result.flow_times]
    assert merged["makespan"] == pytest.approx(float(result.makespan))


def _run_sharded_once(n_shards: int = 3, seed: int = 11) -> bytes:
    jobs = generate_trace(45, "finance", 0.7, 4, seed=seed).jobs
    tenants = tenant_labels(len(jobs), 3, "zipf:1.0", seed=seed)
    with build_local_router(
        n_shards, m=2, policy="drep", seed=seed, tenancy=TenancyConfig()
    ) as router:
        _submit_trace(router, jobs, tenants)
        router.drain()
        return router.report_json()


def test_sharded_run_is_byte_identical_across_runs():
    """Same seed, same shard count -> byte-identical merged report."""
    assert _run_sharded_once() == _run_sharded_once()


def test_merged_report_reassembles_tenants_in_submission_order():
    """Per-tenant groups in the merged report account for every job."""
    jobs = generate_trace(40, "finance", 0.7, 4, seed=5).jobs
    tenants = tenant_labels(len(jobs), 3, "zipf:1.2", seed=5)
    with build_local_router(
        3, m=2, policy="drep", seed=5, tenancy=TenancyConfig()
    ) as router:
        shard_of: dict[str, set[str]] = {}
        for spec, tenant in zip(jobs, tenants):
            resp = router.submit(
                work=spec.work,
                span=spec.span,
                release=spec.release,
                tenant=tenant,
            )
            assert resp["accepted"]
            shard_of.setdefault(tenant, set()).add(resp["shard"])
        merged = router.drain()

    # default routing key = tenant -> one tenant never spans shards
    assert all(len(s) == 1 for s in shard_of.values())
    rows = merged["tenants"]
    assert set(rows) == set(tenants)
    assert sum(r["accepted"] for r in rows.values()) == merged["accepted"]
    assert sum(r["count"] for r in rows.values()) == len(merged["flow_times"])
    for tenant, row in rows.items():
        assert row["accepted"] == tenants.count(tenant)
        if row["count"]:
            assert row["mean_flow"] == pytest.approx(
                row["total_flow"] / row["count"]
            )
    assert merged["total_flow"] == pytest.approx(sum(merged["flow_times"]))


def test_explicit_key_spreads_one_tenant_over_the_ring():
    """An explicit routing key overrides the tenant-affinity default."""
    with build_local_router(4, m=2, policy="srpt", seed=3) as router:
        shards = {
            router.submit(work=1.0, tenant="t0", key=f"job-{i}")["shard"]
            for i in range(64)
        }
        router.drain()
    assert len(shards) > 1


def test_router_rejects_clock_rewind_and_empty_fleet():
    with pytest.raises(ValueError):
        ShardRouter([])
    with build_local_router(2, m=2, policy="srpt", seed=1) as router:
        router.submit(work=1.0, release=5.0)
        with pytest.raises(ValueError):
            router.advance_to(1.0)


def test_report_json_requires_a_drained_router():
    from repro.serve.shard import ShardError

    with build_local_router(2, m=2, policy="srpt", seed=1) as router:
        with pytest.raises(ShardError):
            router.report_json()


# -- subprocess lifecycle hardening ----------------------------------------


def test_await_port_honors_start_timeout_for_a_silent_child(tmp_path):
    """A child that starts but never prints the port (and never exits)
    must fail within start_timeout — a blocking readline would hang."""
    import subprocess
    import sys
    import time

    from repro.serve.server import ServeConfig
    from repro.serve.shard import ShardError, SubprocessShard

    shard = SubprocessShard(
        "shard/0", ServeConfig(m=2), tmp_path, start_timeout=0.5
    )
    shard._proc = subprocess.Popen(
        [sys.executable, "-c", "import time; time.sleep(60)"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    t0 = time.monotonic()
    with pytest.raises(ShardError, match="did not report a port"):
        shard._await_port()
    assert time.monotonic() - t0 < 5.0
    # the silent child was reaped, not orphaned
    assert shard._proc.returncode is not None


@pytest.mark.slow
def test_build_subprocess_router_reaps_partially_started_shards(
    tmp_path, monkeypatch
):
    """A shard that spawned but failed mid-start (here: the router's
    connect raises) must be killed by the builder, not leaked."""
    from repro.serve.shard import SubprocessShard, build_subprocess_router

    spawned = []

    def failing_connect(self):
        spawned.append(self._proc)
        raise OSError("injected connect failure")

    monkeypatch.setattr(SubprocessShard, "_connect", failing_connect)
    with pytest.raises(OSError, match="injected connect failure"):
        build_subprocess_router(1, tmp_path, m=2, seed=0)
    assert len(spawned) == 1
    # wait() returns promptly only because the kill loop reached it
    assert spawned[0].wait(timeout=10) is not None
