"""SIGKILL one engine shard mid-run; the merged report must not notice.

Every :class:`~repro.serve.shard.SubprocessShard` carries its own
write-ahead journal, so a shard that dies without warning is restarted
from the same journal directory and replays itself back to the exact
clock, queue and policy-RNG state it died with.  The router keeps
routing by the same ring, so the drained, reassembled report of the
crashed run is byte-identical to an uninterrupted run of the same trace.
"""

from __future__ import annotations

import pytest

from repro.serve.loadgen import tenant_labels
from repro.serve.shard import build_subprocess_router
from repro.serve.tenancy import TenancyConfig
from repro.workloads.traces import generate_trace

pytestmark = pytest.mark.slow

SEED = 13
VICTIM = "shard/1"


def _workload():
    jobs = generate_trace(30, "finance", 0.7, 4, seed=SEED).jobs
    tenants = tenant_labels(len(jobs), 3, "zipf:1.0", seed=SEED)
    return list(zip(jobs, tenants))


def _run(journal_root, crash: bool) -> bytes:
    workload = _workload()
    half = len(workload) // 2
    router = build_subprocess_router(
        2,
        journal_root,
        m=2,
        policy="drep",
        seed=SEED,
        tenancy=TenancyConfig(),
        snapshot_every=8,
    )
    routed_to: set[str] = set()
    try:
        for i, (spec, tenant) in enumerate(workload):
            if crash and i == half:
                victim = router.shards[VICTIM]
                victim.kill()
                assert router.ping_all()[VICTIM] is False
                hello = victim.restart()
                assert hello["ok"]
                assert router.ping_all()[VICTIM] is True
            resp = router.submit(
                work=spec.work,
                span=spec.span,
                release=spec.release,
                tenant=tenant,
            )
            assert resp["accepted"]
            if i < half:
                routed_to.add(resp["shard"])
        # the victim must have taken jobs *before* the kill for the
        # crash to prove anything about journal recovery
        assert routed_to == {"shard/0", VICTIM}
        merged = router.drain()
        assert merged["accepted"] == len(workload)
        return router.report_json()
    finally:
        router.close()


def test_sigkill_one_shard_recovers_bit_exact(tmp_path):
    crashed = _run(tmp_path / "crashed", crash=True)
    clean = _run(tmp_path / "clean", crash=False)
    assert crashed == clean
