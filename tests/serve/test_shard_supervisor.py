"""Hardened shard restart and the self-healing supervisor loop.

Everything here runs without real subprocesses: spawn attempts are
monkeypatched and the backoff ``sleep`` is injected, so the retry
discipline (bounded exponential backoff, seeded jitter, reap before
every attempt) is asserted on recorded values instead of wall-clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rng import derive_seed
from repro.serve.loadgen import retry_delay
from repro.serve.server import ServeConfig
from repro.serve.shard import (
    ShardError,
    ShardSupervisor,
    SubprocessShard,
)


def make_shard(tmp_path, **kw) -> SubprocessShard:
    sleeps: list[float] = []
    base = dict(
        restart_backoff=0.25,
        restart_backoff_cap=1.0,
        max_restart_attempts=3,
        sleep=sleeps.append,
    )
    base.update(kw)
    shard = SubprocessShard("shard/0", ServeConfig(m=2, seed=11), tmp_path, **base)
    shard._test_sleeps = sleeps
    return shard


class _DeadProc:
    """A child that already exited — poll() returns its code."""

    def __init__(self, code: int = -9) -> None:
        self.code = code
        self.waited = False

    def poll(self):
        return self.code

    def wait(self, timeout=None):
        self.waited = True
        return self.code


class _LiveProc:
    def poll(self):
        return None

    def wait(self, timeout=None):  # pragma: no cover - never reached
        raise AssertionError("must not wait on a live child")


class TestReap:
    def test_reap_collects_dead_child(self, tmp_path):
        shard = make_shard(tmp_path)
        proc = _DeadProc()
        shard._proc = proc
        shard.reap()
        assert proc.waited
        assert shard._proc is None

    def test_reap_refuses_live_child(self, tmp_path):
        shard = make_shard(tmp_path)
        shard._proc = _LiveProc()
        with pytest.raises(ShardError, match="still running"):
            shard.reap()

    def test_reap_with_no_child_is_a_no_op(self, tmp_path):
        shard = make_shard(tmp_path)
        shard.reap()
        assert shard._proc is None


class TestRestartRetries:
    def wire(self, shard, fail_starts: int):
        """Make ``start`` fail ``fail_starts`` times, then succeed."""
        calls = {"n": 0}

        def fake_start():
            calls["n"] += 1
            if calls["n"] <= fail_starts:
                raise OSError("spawn failed")
            shard._proc = _LiveProc()

        shard.start = fake_start
        shard.call = lambda request: {"ok": True, "recovered": True}
        return calls

    def test_succeeds_after_transient_failures(self, tmp_path):
        shard = make_shard(tmp_path)
        calls = self.wire(shard, fail_starts=2)
        hello = shard.restart()
        assert hello["ok"]
        assert calls["n"] == 3
        assert shard.restart_attempts == 3
        assert shard.restarts == 1
        # one backoff sleep per failed attempt, none after the success
        assert len(shard._test_sleeps) == 2

    def test_backoff_is_bounded_exponential_with_seeded_jitter(self, tmp_path):
        shard = make_shard(tmp_path, max_restart_attempts=4)
        self.wire(shard, fail_starts=3)
        shard.restart()
        # replay the exact jitter stream the shard derives its delays from
        rng = np.random.default_rng(derive_seed(11, "restart/shard/0"))
        expected = [retry_delay(a, 0.25, 1.0, rng) for a in (1, 2, 3)]
        assert shard._test_sleeps == expected
        # bounded: every delay is at most the cap
        assert all(d <= 1.0 for d in shard._test_sleeps)

    def test_exhausted_budget_raises_shard_error(self, tmp_path):
        shard = make_shard(tmp_path)
        self.wire(shard, fail_starts=99)
        with pytest.raises(ShardError, match="failed to restart after 3"):
            shard.restart()
        assert shard.restart_attempts == 3
        assert shard.restarts == 0
        assert len(shard._test_sleeps) == 2  # no sleep after the last attempt

    def test_restart_reaps_the_corpse_first(self, tmp_path):
        shard = make_shard(tmp_path)
        proc = _DeadProc()
        shard._proc = proc
        self.wire(shard, fail_starts=0)
        shard.restart()
        assert proc.waited

    def test_attempt_counters_survive_into_supervision_stats(self, tmp_path):
        shard = make_shard(tmp_path)
        self.wire(shard, fail_starts=1)
        shard.restart()
        stats = shard.supervision_stats()
        assert stats["restart_attempts"] == 2
        assert stats["restarts"] == 1
        assert stats["alive"] is True


class _FakeRouter:
    def __init__(self, shards) -> None:
        self.shards = shards


class _ScriptedShard(SubprocessShard):
    """A SubprocessShard whose health and revival are scripted."""

    def __init__(self, tmp_path, name, healthy=True, revivable=True) -> None:
        super().__init__(name, ServeConfig(m=2, seed=11), tmp_path)
        self.healthy = healthy
        self.revivable = revivable
        self.restart_calls = 0

    def ping(self) -> bool:
        return self.healthy

    def restart(self) -> dict:
        self.restart_calls += 1
        if not self.revivable:
            raise ShardError("restart budget exhausted")
        self.healthy = True
        self.restarts += 1
        return {"ok": True}


class TestSupervisor:
    def test_healthy_fleet_sweep(self, tmp_path):
        router = _FakeRouter(
            {f"shard/{i}": _ScriptedShard(tmp_path, f"shard/{i}") for i in range(3)}
        )
        sup = ShardSupervisor(router)
        assert sup.check_once() == {
            "shard/0": "healthy",
            "shard/1": "healthy",
            "shard/2": "healthy",
        }
        assert sup.sweeps == 1 and sup.revivals == 0

    def test_dead_shard_is_revived(self, tmp_path):
        dead = _ScriptedShard(tmp_path, "shard/1", healthy=False)
        router = _FakeRouter(
            {"shard/0": _ScriptedShard(tmp_path, "shard/0"), "shard/1": dead}
        )
        sup = ShardSupervisor(router)
        status = sup.check_once()
        assert status["shard/1"] == "revived"
        assert dead.restart_calls == 1
        assert sup.revivals == 1
        # next sweep finds it healthy — no second restart
        assert sup.check_once()["shard/1"] == "healthy"
        assert dead.restart_calls == 1

    def test_unrevivable_shard_is_quarantined(self, tmp_path):
        hopeless = _ScriptedShard(
            tmp_path, "shard/0", healthy=False, revivable=False
        )
        sup = ShardSupervisor(_FakeRouter({"shard/0": hopeless}))
        assert sup.check_once() == {"shard/0": "failed"}
        assert sup.failures == 1 and sup.failed == {"shard/0"}
        # quarantined: later sweeps do not retry the restart
        assert sup.check_once() == {"shard/0": "failed"}
        assert hopeless.restart_calls == 1

    def test_local_shards_are_skipped(self, tmp_path):
        from repro.serve.shard import LocalShard

        router = _FakeRouter({"shard/0": LocalShard("shard/0", ServeConfig(m=2))})
        sup = ShardSupervisor(router)
        assert sup.check_once() == {"shard/0": "local"}

    def test_run_bounded_by_max_sweeps(self, tmp_path):
        sup = ShardSupervisor(
            _FakeRouter({"shard/0": _ScriptedShard(tmp_path, "shard/0")})
        )
        sleeps: list[float] = []
        sup.run(interval=0.5, max_sweeps=3, sleep=sleeps.append)
        assert sup.sweeps == 3
        assert sleeps == [0.5, 0.5]  # no sleep after the final sweep

    def test_run_honors_stop_event(self, tmp_path):
        import threading

        sup = ShardSupervisor(
            _FakeRouter({"shard/0": _ScriptedShard(tmp_path, "shard/0")})
        )
        stop = threading.Event()
        stop.set()
        sup.run(interval=0.5, max_sweeps=10, sleep=lambda _: None)
        assert sup.sweeps == 10
        sup2 = ShardSupervisor(
            _FakeRouter({"shard/0": _ScriptedShard(tmp_path, "shard/0")})
        )
        sup2.run(interval=0.5, stop=stop, sleep=lambda _: None)
        assert sup2.sweeps == 0

    def test_stats_merge_per_shard_counters(self, tmp_path):
        dead = _ScriptedShard(tmp_path, "shard/1", healthy=False)
        sup = ShardSupervisor(
            _FakeRouter(
                {"shard/0": _ScriptedShard(tmp_path, "shard/0"), "shard/1": dead}
            )
        )
        sup.check_once()
        stats = sup.stats()
        assert stats["sweeps"] == 1
        assert stats["revivals"] == 1
        assert stats["failed"] == []
        assert stats["per_shard"]["shard/1"]["restarts"] == 1
