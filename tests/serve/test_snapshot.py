"""Checkpoint/restore: a killed server resumes without losing anything.

The load-bearing property: checkpoint mid-run, restore (same or fresh
process), finish the replay — the flow times must equal an
uninterrupted run exactly, RNG draws included.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.flowsim import simulate
from repro.flowsim.policies import SETF, DrepSequential, WDrep
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    RollingMetrics,
    restore_scheduler,
    restore_scheduler_file,
    snapshot_scheduler,
    snapshot_scheduler_file,
)
from repro.serve.online import OnlineScheduler
from repro.serve.snapshot import SnapshotError
from repro.workloads.traces import generate_trace


def stream_prefix(sched: OnlineScheduler, trace, upto: int) -> None:
    for spec in trace.jobs[:upto]:
        sched.advance_to(spec.release)
        sched.submit_spec(spec)


def stream_rest_and_drain(sched: OnlineScheduler, trace, start: int):
    for spec in trace.jobs[start:]:
        sched.advance_to(spec.release)
        sched.submit_spec(spec)
    return sched.drain()


class TestRoundTrip:
    @pytest.mark.parametrize("policy_cls", [DrepSequential, WDrep, SETF])
    def test_mid_run_checkpoint_matches_uninterrupted(self, policy_cls):
        trace = generate_trace(120, "finance", 0.7, 4, seed=21)
        uninterrupted = simulate(trace, 4, policy_cls(), seed=21)

        sched = OnlineScheduler(4, policy_cls(), seed=21)
        stream_prefix(sched, trace, 60)
        # force an honest serialization boundary
        state = json.loads(json.dumps(snapshot_scheduler(sched)))
        restored = restore_scheduler(state)
        assert restored.now == sched.now
        result = stream_rest_and_drain(restored, trace, 60)
        np.testing.assert_array_equal(
            result.flow_times, uninterrupted.flow_times
        )
        assert result.preemptions == uninterrupted.preemptions

    def test_restore_in_fresh_process(self, tmp_path: Path):
        """Kill the 'server', restore in a brand-new interpreter, drain."""
        trace = generate_trace(80, "bing", 0.6, 2, seed=33)
        uninterrupted = simulate(trace, 2, DrepSequential(), seed=33)

        sched = OnlineScheduler(2, DrepSequential(), seed=33)
        stream_prefix(sched, trace, 40)
        snap = snapshot_scheduler_file(sched, tmp_path / "ckpt.json")
        trace_file = tmp_path / "trace.json"
        trace.save(trace_file)

        script = (
            "import json, sys\n"
            "from repro.serve import restore_scheduler_file\n"
            "from repro.workloads.traces import Trace\n"
            "sched = restore_scheduler_file(sys.argv[1])\n"
            "trace = Trace.load_file(sys.argv[2])\n"
            "for spec in trace.jobs[40:]:\n"
            "    sched.advance_to(spec.release)\n"
            "    sched.submit_spec(spec)\n"
            "result = sched.drain()\n"
            "print(json.dumps([float(f) for f in result.flow_times]))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(snap), str(trace_file)],
            capture_output=True,
            text=True,
            check=True,
        )
        flows = np.array(json.loads(proc.stdout), dtype=float)
        np.testing.assert_array_equal(flows, uninterrupted.flow_times)

    def test_collaborator_state_survives(self, tmp_path: Path):
        sched = OnlineScheduler(
            2,
            DrepSequential(),
            admission=AdmissionController(AdmissionConfig(max_active=2), 2),
            metrics=RollingMetrics(window=50.0),
        )
        sched.submit(work=1.0)
        sched.submit(work=1.0)
        assert not sched.submit(work=1.0).accepted  # shed
        sched.advance_to(10.0)
        path = snapshot_scheduler_file(sched, tmp_path / "s.json")
        restored = restore_scheduler_file(path)
        assert restored.n_shed == 1
        assert restored.n_offered == 3
        assert restored.metrics.completed == 2
        assert restored.admission.config.max_active == 2
        # restored scheduler keeps enforcing the same policy
        restored.submit(work=1.0)
        restored.submit(work=1.0)
        assert not restored.submit(work=1.0).accepted


class TestErrors:
    def test_dag_jobs_refuse_snapshot(self):
        from repro.workloads.traces import attach_dags

        trace = attach_dags(generate_trace(3, "finance", 0.5, 2, seed=0), 2)
        sched = OnlineScheduler(2, DrepSequential())
        for spec in trace.jobs:
            sched.advance_to(spec.release)
            sched.submit_spec(spec)
        with pytest.raises(Exception, match="DAG"):
            snapshot_scheduler(sched)

    def test_version_mismatch_rejected(self):
        sched = OnlineScheduler(1, DrepSequential())
        state = snapshot_scheduler(sched)
        state["version"] = 999
        with pytest.raises(SnapshotError, match="version"):
            restore_scheduler(state)

    def test_foreign_policy_class_rejected(self):
        sched = OnlineScheduler(1, DrepSequential())
        state = snapshot_scheduler(sched)
        state["policy"]["class"] = "os:system"
        with pytest.raises(SnapshotError, match="repro"):
            restore_scheduler(state)
