"""Multi-tenant admission: credits, DRF throttling, state round-trips.

The headline scenario is the issue's acceptance criterion: one hot
tenant offering 10x the load of each cold tenant trips the global load
cap, the DRF layer sheds only the hot (dominant) tenant, and every cold
tenant's accepted throughput stays within 10% of what it gets running
alone.  Around that: credit accrual/burst/borrow/repayment mechanics,
the tenant-blind ``decide`` fallback, and bit-exact ``state_dict`` /
snapshot / journal round-trips with tenant labels attached.
"""

from __future__ import annotations

import json

import pytest

from repro.flowsim.engine import FlowSimConfig
from repro.flowsim.policies import policy_by_name
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.metrics import RollingMetrics
from repro.serve.online import OnlineScheduler
from repro.serve.snapshot import restore_scheduler, snapshot_scheduler
from repro.serve.tenancy import (
    DEFAULT_TENANT,
    MultiTenantAdmission,
    TenancyConfig,
    TenantAccount,
)


def _admission(tenancy: TenancyConfig, m: int = 4, **caps) -> MultiTenantAdmission:
    return MultiTenantAdmission(AdmissionConfig(**caps), m=m, tenancy=tenancy)


# -- credit accounting -----------------------------------------------------


def test_credit_accrues_at_entitlement_rate_and_caps_at_burst():
    adm = _admission(TenancyConfig(credit_rate=1.0, credit_burst=5.0), m=4)
    # single tenant: entitlement 1, rate = credit_rate * m = 4 per time unit
    assert adm.credit_balance("a", 0.0) == 0.0
    assert adm.credit_balance("a", 1.0) == pytest.approx(4.0)
    # long idle stretch saturates at burst seconds of own accrual
    assert adm.credit_balance("a", 1000.0) == pytest.approx(5.0 * 4.0)


def test_accepted_work_spends_credit_and_exhaustion_sheds():
    adm = _admission(TenancyConfig(credit_rate=1.0, credit_burst=5.0), m=4)
    adm.credit_balance("a", 0.0)  # register: accounts start empty
    adm.credit_balance("a", 1.0)  # bank 4 machine-seconds
    assert (
        adm.decide_tenant(1.0, "a", work=3.0, active=0, backlog_work=0.0)
        is AdmissionDecision.ACCEPT
    )
    assert adm.credit_balance("a", 1.0) == pytest.approx(1.0)
    # no borrow allowance: the next big job is over the balance
    assert (
        adm.decide_tenant(1.0, "a", work=3.0, active=0, backlog_work=0.0)
        is AdmissionDecision.SHED_NO_CREDIT
    )
    acct = adm.tenants["a"]
    assert acct.accepted == 1 and acct.shed == 1


def test_borrow_allows_debt_then_accrual_repays_it():
    adm = _admission(
        TenancyConfig(credit_rate=1.0, credit_burst=5.0, credit_borrow=2.0),
        m=4,
    )
    adm.credit_balance("a", 0.0)  # register: accounts start empty
    adm.credit_balance("a", 1.0)  # balance 4, borrow floor -2 * 4 = -8
    assert (
        adm.decide_tenant(1.0, "a", work=10.0, active=0, backlog_work=0.0)
        is AdmissionDecision.ACCEPT
    )
    assert adm.credit_balance("a", 1.0) == pytest.approx(-6.0)
    # -6 - 10 = -16 < -8: out of borrow allowance too
    assert (
        adm.decide_tenant(1.0, "a", work=10.0, active=0, backlog_work=0.0)
        is AdmissionDecision.SHED_NO_CREDIT
    )
    # accrual repays the debt before the balance turns positive
    assert adm.credit_balance("a", 2.0) == pytest.approx(-2.0)
    assert adm.credit_balance("a", 3.0) == pytest.approx(2.0)
    assert (
        adm.decide_tenant(3.0, "a", work=2.0, active=0, backlog_work=0.0)
        is AdmissionDecision.ACCEPT
    )


def test_tenant_blind_decide_charges_the_default_tenant():
    adm = _admission(TenancyConfig(credit_rate=1.0), m=4)
    adm.credit_balance(DEFAULT_TENANT, 0.0)  # register, then accrue
    assert (
        adm.decide(1.0, work=1.0, active=0, backlog_work=0.0)
        is AdmissionDecision.ACCEPT
    )
    assert DEFAULT_TENANT in adm.tenants
    assert adm.tenants[DEFAULT_TENANT].accepted == 1


def test_hard_queue_cap_binds_every_tenant():
    adm = _admission(TenancyConfig(), m=4, max_active=2)
    assert (
        adm.decide_tenant(0.0, "a", work=1.0, active=2, backlog_work=0.0)
        is AdmissionDecision.SHED_QUEUE_FULL
    )


def test_on_complete_releases_a_slot_and_never_goes_negative():
    adm = _admission(TenancyConfig(), m=4)
    adm.decide_tenant(0.0, "a", work=1.0, active=0, backlog_work=0.0)
    assert adm.tenants["a"].active == 1
    adm.on_complete("a")
    assert adm.tenants["a"].active == 0
    adm.on_complete("a")  # replay/over-delivery tolerated
    adm.on_complete(None)
    adm.on_complete("never-seen")
    assert adm.tenants["a"].active == 0


def test_config_validation():
    with pytest.raises(ValueError):
        TenancyConfig(credit_rate=0.0)
    with pytest.raises(ValueError):
        TenancyConfig(credit_burst=0.0)
    with pytest.raises(ValueError):
        TenancyConfig(credit_borrow=-1.0)
    with pytest.raises(ValueError):
        TenancyConfig(drf_headroom=0.9)
    with pytest.raises(ValueError):
        TenantAccount("a", weight=0.0)


# -- DRF fairness under skew (the acceptance criterion) --------------------


def _offered_stream(hot: bool, horizon: float = 120.0):
    """Deterministic arrival stream: 2 cold tenants at 1 job/s (work 1),
    plus, when ``hot``, one hot tenant at 10 jobs/s — 10x each cold."""
    events = []
    t = 0.0
    while t < horizon:
        events.append((t, "cold-0", 1.0))
        events.append((t + 0.5, "cold-1", 1.0))
        if hot:
            for k in range(10):
                events.append((t + k / 10.0, "hot", 1.0))
        t += 1.0
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def _run_stream(adm: MultiTenantAdmission, events):
    accepted: dict[str, int] = {}
    offered: dict[str, int] = {}
    for t, tenant, work in events:
        adm.observe(t, work)
        offered[tenant] = offered.get(tenant, 0) + 1
        decision = adm.decide_tenant(
            t, tenant, work=work, active=0, backlog_work=0.0
        )
        if decision.accepted:
            accepted[tenant] = accepted.get(tenant, 0) + 1
    return offered, accepted


def test_drf_sheds_the_hot_tenant_and_protects_cold_tenants():
    """Hot tenant at 10x load: cold throughput within 10% of baseline."""

    def make_admission():
        # m=4: cold-only load is 2/4 = 0.5 (under the 0.9 ceiling);
        # adding the hot tenant pushes offered load to 3.0 (way over).
        return _admission(
            TenancyConfig(drf_headroom=1.2),
            m=4,
            max_load=0.9,
            halflife=5.0,
        )

    baseline_offered, baseline = _run_stream(
        make_admission(), _offered_stream(hot=False)
    )
    skew_offered, skewed = _run_stream(
        make_admission(), _offered_stream(hot=True)
    )

    # cold tenants keep (at least) 90% of their single-tenant throughput
    for cold in ("cold-0", "cold-1"):
        assert baseline[cold] == baseline_offered[cold]  # uncongested
        assert skewed[cold] >= 0.9 * baseline[cold]
    # the hot tenant is the one being shed, and heavily so
    hot_shed = skew_offered["hot"] - skewed.get("hot", 0)
    assert hot_shed > 0.5 * skew_offered["hot"]


def test_soft_caps_still_bind_for_a_single_tenant():
    """A lone tenant is never 'dominant' (share <= 1.0 < headroom), but
    configured backlog/load ceilings must shed anyway — via the
    base-class reasons, exactly like the tenant-blind controller."""
    adm = _admission(TenancyConfig(), m=4, max_backlog=2.0)
    assert (
        adm.decide_tenant(0.0, "solo", work=1.0, active=0, backlog_work=9.0)
        is AdmissionDecision.SHED_BACKLOG
    )

    adm = _admission(TenancyConfig(), m=4, max_load=0.5, halflife=5.0)
    for k in range(100):
        adm.observe(k * 0.1, 4.0)  # offered load ~10, far past the ceiling
    assert adm.overloaded(10.0)
    assert (
        adm.decide_tenant(10.0, "solo", work=4.0, active=0, backlog_work=0.0)
        is AdmissionDecision.SHED_OVERLOAD
    )
    assert adm.tenants["solo"].shed == 1


def test_uniform_overload_sheds_despite_no_dominant_tenant():
    """K equally-loaded tenants each sit at ~1/K < headroom/K, so the DRF
    exemption would admit everyone; the fallback keeps the cap binding."""
    adm = _admission(TenancyConfig(), m=4, max_load=0.5, halflife=5.0)
    tenants = [f"t{i}" for i in range(4)]
    sheds = []
    for k in range(400):
        t = k * 0.05
        adm.observe(t, 2.0)
        decision = adm.decide_tenant(
            t, tenants[k % 4], work=2.0, active=0, backlog_work=0.0
        )
        if not decision.accepted:
            sheds.append(decision)
    assert sheds, "load cap never tripped under 10x overload"
    assert set(sheds) == {AdmissionDecision.SHED_OVERLOAD}


def test_caps_only_decisions_match_the_base_controller():
    """With one implicit tenant and no credits, the multi-tenant path must
    reproduce AdmissionController.decide verbatim — the contract the
    router relies on when only --max-* flags are given."""
    caps = dict(max_active=8, max_backlog=5.0, max_load=0.8, halflife=5.0)
    base = AdmissionController(AdmissionConfig(**caps), m=4)
    multi = _admission(TenancyConfig(), m=4, **caps)
    for k in range(300):
        t = k * 0.1
        work = 1.0 + (k % 5)
        active = k % 12
        backlog = float(k % 40)
        base.observe(t, work)
        multi.observe(t, work)
        assert base.decide(t, work, active, backlog) is multi.decide(
            t, work, active, backlog
        ), f"diverged at arrival {k}"


def test_dominant_share_tracks_the_offered_skew():
    adm = _admission(TenancyConfig(), m=4, halflife=5.0)
    for t, tenant, work in _offered_stream(hot=True, horizon=60.0):
        adm.observe(t, work)
        adm.decide_tenant(t, tenant, work=work, active=0, backlog_work=0.0)
    hot = adm.dominant_share("hot", 60.0)
    cold = adm.dominant_share("cold-0", 60.0)
    # offered ratio is 10:1:1 -> shares near 10/12 and 1/12
    assert hot > 0.6
    assert cold < 0.2
    assert not adm.over_entitlement("cold-0", 60.0)
    assert adm.over_entitlement("hot", 60.0)


def test_weights_shift_entitlements():
    adm = MultiTenantAdmission(
        AdmissionConfig(),
        m=4,
        tenancy=TenancyConfig(),
        weights={"gold": 3.0, "bronze": 1.0},
    )
    assert adm.entitlement("gold") == pytest.approx(0.75)
    assert adm.entitlement("bronze") == pytest.approx(0.25)
    # unseen tenants default to full entitlement until registered
    assert adm.entitlement("unknown") == 1.0


# -- persistence: state_dict, snapshot, journal-shaped replay --------------


def test_state_dict_round_trip_is_bit_exact():
    adm = _admission(
        TenancyConfig(credit_rate=0.5, credit_burst=8.0, credit_borrow=1.0),
        m=4,
        max_active=64,
        max_load=0.95,
    )
    for t, tenant, work in _offered_stream(hot=True, horizon=20.0):
        adm.observe(t, work)
        adm.decide_tenant(t, tenant, work=work, active=0, backlog_work=0.0)
    clone = MultiTenantAdmission.from_state_dict(adm.state_dict())
    assert json.dumps(clone.state_dict(), sort_keys=True) == json.dumps(
        adm.state_dict(), sort_keys=True
    )
    # and the clone keeps deciding identically
    for t, tenant, work in _offered_stream(hot=True, horizon=5.0):
        t += 20.0
        adm.observe(t, work)
        clone.observe(t, work)
        assert adm.decide_tenant(
            t, tenant, work=work, active=0, backlog_work=0.0
        ) is clone.decide_tenant(
            t, tenant, work=work, active=0, backlog_work=0.0
        )


def _tenant_scheduler(seed: int = 3) -> OnlineScheduler:
    # no credit gate: fresh accounts start empty, and these tests want
    # every submission accepted so the label plumbing is what's under test
    return OnlineScheduler(
        m=2,
        policy=policy_by_name("drep"),
        seed=seed,
        config=FlowSimConfig(speed=1.0, max_events=None),
        admission=_admission(TenancyConfig(), m=2),
        metrics=RollingMetrics(window=64),
    )


def test_snapshot_round_trip_preserves_tenant_labels():
    sched = _tenant_scheduler()
    for i, tenant in enumerate(["a", "b", "a", "c", "b", "a"]):
        sched.submit(work=1.0 + 0.1 * i, release=float(i), tenant=tenant)
    restored = restore_scheduler(snapshot_scheduler(sched))
    assert restored.tenant_labels == sched.tenant_labels
    assert isinstance(restored.admission, MultiTenantAdmission)
    assert json.dumps(
        restored.admission.state_dict(), sort_keys=True
    ) == json.dumps(sched.admission.state_dict(), sort_keys=True)
    # both drain to the same per-tenant flow groups
    sched.drain()
    restored.drain()
    assert restored.flows_by_tenant() == sched.flows_by_tenant()


def test_journal_replay_restores_tenant_labels(tmp_path):
    from repro.serve.journal import RequestJournal, apply_entry, read_journal

    entries = [
        {"op": "submit", "work": 1.0, "release": 0.0, "tenant": "a"},
        {"op": "submit", "work": 2.0, "release": 0.5, "tenant": "b"},
        {"op": "advance", "to": 1.0},
        {"op": "submit", "work": 0.5, "release": 1.0, "tenant": "a"},
    ]
    with RequestJournal(tmp_path) as journal:
        for entry in entries:
            journal.append(entry)

    live = _tenant_scheduler()
    for entry in entries:
        apply_entry(live, entry)

    replayed = _tenant_scheduler()
    for entry in read_journal(tmp_path):
        apply_entry(replayed, entry)
    assert replayed.tenant_labels == live.tenant_labels == ["a", "b", "a"]
    live.drain()
    replayed.drain()
    assert replayed.flows_by_tenant() == live.flows_by_tenant()
