"""Run the doctest examples embedded in module docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.core.rng

MODULES_WITH_DOCTESTS = [repro.core.rng]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # guard against silently empty doctests
