"""Package-level sanity: exports, version, no import cycles."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_modules_import(self):
        names = list(iter_modules())
        assert len(names) > 30
        for name in names:
            importlib.import_module(name)

    def test_all_exports_resolve(self):
        """Every name in every __all__ must exist in its module."""
        for name in iter_modules():
            mod = importlib.import_module(name)
            for symbol in getattr(mod, "__all__", []):
                assert hasattr(mod, symbol), f"{name}.{symbol} missing"

    def test_top_level_namespaces(self):
        for sub in ("core", "dag", "workloads", "flowsim", "wsim", "hetero", "theory", "analysis"):
            assert hasattr(repro, sub)

    def test_public_classes_have_docstrings(self):
        missing = []
        for name in iter_modules():
            mod = importlib.import_module(name)
            if not mod.__doc__:
                missing.append(name)
            for symbol in getattr(mod, "__all__", []):
                obj = getattr(mod, symbol)
                if isinstance(obj, type) and not obj.__doc__:
                    missing.append(f"{name}.{symbol}")
        assert not missing, f"undocumented public items: {missing}"

    def test_registries_cover_exports(self):
        from repro.flowsim.policies import policy_by_name
        from repro.wsim.schedulers import ws_scheduler_by_name

        for name in ("srpt", "sjf", "rr", "fifo", "laps", "setf", "mlf",
                     "drep", "drep-par", "hdf", "wsrpt", "wdrep", "random-np"):
            assert policy_by_name(name) is not None
        for name in ("drep", "swf", "steal-first", "admit-first",
                     "central-greedy", "rr"):
            assert ws_scheduler_by_name(name) is not None

    def test_py_typed_marker(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()

    def test_no_dataclass_field_shadowed_by_method(self):
        """Regression guard for the Trace.load bug class: a method defined
        after a dataclass field of the same name silently becomes the
        field's default value."""
        import dataclasses

        offenders = []
        for name in iter_modules():
            mod = importlib.import_module(name)
            for symbol in getattr(mod, "__all__", []):
                obj = getattr(mod, symbol)
                if isinstance(obj, type) and dataclasses.is_dataclass(obj):
                    for f in dataclasses.fields(obj):
                        if callable(f.default):
                            offenders.append(f"{name}.{symbol}.{f.name}")
        assert not offenders, f"fields with callable defaults: {offenders}"
