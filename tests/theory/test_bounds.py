"""Tests for repro.theory.bounds."""

from __future__ import annotations

import pytest

from repro.flowsim.engine import simulate
from repro.flowsim.policies import FIFO, RoundRobin, SRPT
from repro.theory.bounds import (
    empirical_competitive_ratio,
    flow_lower_bound,
    job_lower_bounds,
    srpt_opt_proxy,
)
from tests.conftest import make_trace


class TestJobLowerBounds:
    def test_sequential_bound_is_work(self):
        trace = make_trace([4.0, 2.0])
        lb = job_lower_bounds(trace, m=8)
        assert list(lb) == [4.0, 2.0]

    def test_mean_bound(self):
        trace = make_trace([4.0, 2.0])
        assert flow_lower_bound(trace, m=8) == pytest.approx(3.0)

    def test_empty_trace(self):
        assert flow_lower_bound(make_trace([]), m=1) == 0.0


class TestBoundsHold:
    @pytest.mark.parametrize("policy_cls", [SRPT, FIFO, RoundRobin])
    def test_no_schedule_beats_the_bound(self, policy_cls, small_random_trace):
        r = simulate(small_random_trace, 4, policy_cls())
        assert r.mean_flow >= flow_lower_bound(small_random_trace, 4) * (1 - 1e-9)

    def test_parallel_bound_holds(self, small_parallel_trace):
        r = simulate(small_parallel_trace, 4, SRPT())
        assert r.mean_flow >= flow_lower_bound(small_parallel_trace, 4) * (1 - 1e-9)


class TestSrptProxy:
    def test_proxy_is_srpt(self, small_random_trace):
        proxy = srpt_opt_proxy(small_random_trace, 4)
        direct = simulate(small_random_trace, 4, SRPT())
        assert proxy.mean_flow == pytest.approx(direct.mean_flow)

    def test_ratios(self, small_random_trace):
        rr = simulate(small_random_trace, 4, RoundRobin())
        ratios = empirical_competitive_ratio(rr, small_random_trace, 4)
        assert ratios["vs_srpt"] >= 1.0 - 1e-9
        assert ratios["vs_lower_bound"] >= ratios["vs_srpt"]
