"""Tests for the speed-competitiveness frontier."""

from __future__ import annotations

import pytest

from repro.flowsim.policies import FIFO, DrepSequential, RoundRobin, SRPT
from repro.theory.competitive import find_required_speed, speed_sweep
from repro.workloads.traces import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(1500, "finance", 0.7, 4, seed=81)


class TestFindRequiredSpeed:
    def test_srpt_needs_speed_one(self, trace):
        f = find_required_speed(trace, 4, SRPT, seed=81)
        assert f.required_speed == 1.0
        assert f.iterations == 1

    def test_drep_needs_modest_speed(self, trace):
        """The empirical face of Theorem 1.1: far below 4+eps."""
        f = find_required_speed(trace, 4, DrepSequential, seed=81)
        assert 1.0 <= f.required_speed <= 2.0

    def test_relaxed_target_lowers_requirement(self, trace):
        tight = find_required_speed(trace, 4, RoundRobin, target_ratio=1.0, seed=81)
        loose = find_required_speed(trace, 4, RoundRobin, target_ratio=1.5, seed=81)
        assert loose.required_speed <= tight.required_speed

    def test_invalid_params(self, trace):
        with pytest.raises(ValueError):
            find_required_speed(trace, 4, SRPT, target_ratio=0.5)
        with pytest.raises(ValueError):
            find_required_speed(trace, 4, SRPT, tol=0.0)

    def test_insufficient_ceiling_detected(self):
        # heavy-tailed work on one machine: FIFO at 1.01x speed cannot
        # match SRPT (the size-variance regime where FCFS collapses)
        bing = generate_trace(1500, "bing", 0.7, 1, seed=82)
        with pytest.raises(ValueError, match="insufficient"):
            find_required_speed(bing, 1, FIFO, speed_hi=1.01, seed=82)


class TestSpeedSweep:
    def test_rows_and_monotonicity(self, trace):
        rows = speed_sweep(trace, 4, DrepSequential, speeds=[1.0, 2.0, 4.0], seed=81)
        assert [r["speed"] for r in rows] == [1.0, 2.0, 4.0]
        flows = [r["mean_flow"] for r in rows]
        assert flows[0] >= flows[1] >= flows[2]

    def test_ratio_column(self, trace):
        rows = speed_sweep(trace, 4, SRPT, speeds=[1.0], seed=81)
        assert rows[0]["vs_unit_srpt"] == pytest.approx(1.0)
