"""Tests for the brute-force exact optimum (small instances)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import FIFO, RoundRobin, SJF, SRPT, DrepSequential
from repro.theory.exact_opt import (
    exact_optimal_mean_flow,
    exact_optimal_total_flow,
    exhaustive_ratio,
)
from repro.workloads.traces import Trace
from tests.conftest import make_trace


class TestBasics:
    def test_empty(self):
        assert exact_optimal_total_flow(make_trace([]), 1) == 0.0

    def test_single_job(self):
        assert exact_optimal_total_flow(make_trace([5.0]), 1) == 5.0

    def test_two_jobs_is_srpt(self):
        # serve short first: flows 1 and 4 -> total 5
        t = make_trace([3.0, 1.0])
        assert exact_optimal_total_flow(t, 1) == 5.0

    def test_two_machines_parallel_service(self):
        t = make_trace([2.0, 2.0])
        assert exact_optimal_total_flow(t, 2) == 4.0

    def test_guards(self):
        with pytest.raises(ValueError, match="integer"):
            exact_optimal_total_flow(make_trace([1.5]), 1)
        big = make_trace([10.0] * 11)
        with pytest.raises(ValueError, match="too large"):
            exact_optimal_total_flow(big, 1)
        par = Trace(
            jobs=[JobSpec(0, 0.0, 4.0, 1.0, ParallelismMode.FULLY_PARALLEL)], m=2
        )
        with pytest.raises(ValueError, match="sequential"):
            exact_optimal_total_flow(par, 2)
        with pytest.raises(ValueError):
            exact_optimal_total_flow(make_trace([1.0]), 0)

    def test_exhaustive_ratio(self):
        t = make_trace([3.0, 1.0])
        assert exhaustive_ratio(2.5, t, 1) == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(
    works=st.lists(st.integers(1, 6), min_size=1, max_size=5),
    gaps=st.lists(st.integers(0, 4), min_size=5, max_size=5),
)
def test_srpt_is_optimal_on_one_machine(works, gaps):
    """Classic theorem, verified against brute force."""
    releases = np.cumsum([0] + gaps[: len(works) - 1]).tolist()
    trace = make_trace([float(w) for w in works], releases=[float(r) for r in releases])
    opt = exact_optimal_total_flow(trace, 1)
    srpt = simulate(trace, 1, SRPT()).total_flow
    assert srpt == pytest.approx(opt, abs=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    works=st.lists(st.integers(1, 5), min_size=2, max_size=5),
    gaps=st.lists(st.integers(0, 3), min_size=5, max_size=5),
    m=st.integers(2, 3),
)
def test_no_policy_beats_exact_opt(works, gaps, m):
    releases = np.cumsum([0] + gaps[: len(works) - 1]).tolist()
    trace = make_trace([float(w) for w in works], releases=[float(r) for r in releases])
    opt = exact_optimal_total_flow(trace, m)
    for policy in (SRPT(), SJF(), FIFO(), RoundRobin(), DrepSequential()):
        total = simulate(trace, m, policy, seed=1).total_flow
        assert total >= opt - 1e-6, policy.name


class TestSrptMultiMachineGap:
    def test_srpt_near_optimal_on_two_machines(self):
        """SRPT is not exactly optimal for m >= 2, but on small instances
        it stays within a few percent of the brute-force optimum —
        justifying the paper's (and our) use of it as the OPT proxy."""
        rng = np.random.default_rng(5)
        worst = 1.0
        for _ in range(30):
            n = int(rng.integers(3, 6))
            works = [float(rng.integers(1, 6)) for _ in range(n)]
            releases = np.cumsum(rng.integers(0, 3, n)).astype(float).tolist()
            trace = make_trace(works, releases=releases)
            opt = exact_optimal_total_flow(trace, 2)
            srpt = simulate(trace, 2, SRPT()).total_flow
            worst = max(worst, srpt / opt)
        assert worst <= 1.12
