"""Tests for the Lemma 4.8 window tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, spawn_tree
from repro.theory.lemma48 import Lemma48Tracker, WindowStats
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsRuntime
from repro.wsim.schedulers import DrepWS, SwfApproxWS


def build_trace(n_jobs: int, seed: int, m: int = 4) -> Trace:
    rng = np.random.default_rng(seed)
    jobs, t = [], 0.0
    for i in range(n_jobs):
        d = spawn_tree(int(rng.integers(2, 6)), int(rng.integers(5, 30)))
        jobs.append(
            JobSpec(i, t, float(d.work), float(d.span), ParallelismMode.DAG, dag=d)
        )
        t += float(rng.exponential(40.0))
    return Trace(jobs=jobs, m=m)


class TestWindowStats:
    def test_empty(self):
        s = WindowStats()
        assert s.quarter_drop_fraction == 0.0
        assert s.mean_log3_drop == 0.0

    def test_fraction(self):
        s = WindowStats(windows=8, quarter_drops=3, total_log3_drop=4.0)
        assert s.quarter_drop_fraction == pytest.approx(3 / 8)
        assert s.mean_log3_drop == pytest.approx(0.5)


class TestTracker:
    @pytest.mark.parametrize("scheduler_cls", [DrepWS, SwfApproxWS])
    def test_lemma_holds_statistically(self, scheduler_cls):
        trace = build_trace(40, seed=scheduler_cls.__name__.__len__())
        tracker = Lemma48Tracker()
        WsRuntime(trace, 4, scheduler_cls(), seed=11).run(observer=tracker)
        stats = tracker.stats
        assert stats.windows > 20
        # the lemma's guarantee, with sampling slack: > 1/4 of windows
        # drop psi by a quarter (we require > 0.2 to absorb noise)
        assert stats.quarter_drop_fraction > 0.2
        # expected log3 drop per window far exceeds the 1/16 the proof
        # needs
        assert stats.mean_log3_drop > 1.0 / 16.0

    def test_single_sequential_job_few_windows(self):
        # a chain spawns no parallel work: no steal-attempt windows close
        # beyond at most the arrival mugging
        d = chain(50, 1)
        jobs = [JobSpec(0, 0.0, float(d.work), float(d.span), ParallelismMode.DAG, dag=d)]
        trace = Trace(jobs=jobs, m=2)
        tracker = Lemma48Tracker()
        WsRuntime(trace, 2, DrepWS(), seed=0).run(observer=tracker)
        # windows may close (the idle second worker steals-fails), but
        # every closed window must have non-negative accounted drop
        assert tracker.stats.total_log3_drop >= 0.0

    def test_deterministic(self):
        trace = build_trace(20, seed=5)
        a, b = Lemma48Tracker(), Lemma48Tracker()
        WsRuntime(trace, 4, DrepWS(), seed=3).run(observer=a)
        WsRuntime(trace, 4, DrepWS(), seed=3).run(observer=b)
        assert a.stats == b.stats
