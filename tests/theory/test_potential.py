"""Tests for repro.theory.potential — the Sec. IV-B potential functions.

The headline structural check is Lemma 4.8's first claim: the steal
potential ψ never increases while the runtime executes (we verify it on
live DREP runs by snapshotting every step).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, spawn_tree
from repro.dag.graph import NO_CHILD, DagJob
from repro.theory.potential import (
    flow_potential,
    node_weights,
    snapshot_runtime,
    steal_potential_log3,
)
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsRuntime
from repro.wsim.schedulers import DrepWS


def diamond():
    return DagJob(
        weights=np.array([1, 2, 5, 1]),
        child1=np.array([1, 3, 3, NO_CHILD]),
        child2=np.array([2, NO_CHILD, NO_CHILD, NO_CHILD]),
    )


class TestNodeWeights:
    def test_weights_nonnegative(self):
        w = node_weights(diamond())
        assert (w >= 0).all()

    def test_sink_weight_zero(self):
        w = node_weights(diamond())
        assert w[3] == 0  # the sink lies at depth == span

    def test_source_weight(self):
        d = diamond()
        w = node_weights(d)
        assert w[0] == d.span - 1  # source depth = its own weight 1


class TestStealPotential:
    def test_empty_is_neg_inf(self):
        assert steal_potential_log3(diamond(), np.array([]), np.array([])) == float(
            "-inf"
        )

    def test_single_ready_source(self):
        d = diamond()
        psi = steal_potential_log3(d, np.array([0]), np.array([]))
        assert psi == pytest.approx(2 * (d.span - 1))

    def test_assigned_less_than_ready(self):
        d = diamond()
        ready = steal_potential_log3(d, np.array([0]), np.array([]))
        assigned = steal_potential_log3(d, np.array([]), np.array([0]))
        assert assigned == pytest.approx(ready - 1)

    def test_sum_of_two_nodes(self):
        d = diamond()
        both = steal_potential_log3(d, np.array([1, 2]), np.array([]))
        w = node_weights(d)
        expected = math.log(3 ** (2 * w[1]) + 3 ** (2 * w[2]), 3)
        assert both == pytest.approx(expected)

    def test_large_span_no_overflow(self):
        d = chain(5000, 1)  # span 5000: 3^10000 overflows floats badly
        psi = steal_potential_log3(d, np.array([0]), np.array([]))
        assert np.isfinite(psi)
        assert psi == pytest.approx(2 * (d.span - 1))


class TestFlowPotential:
    def test_zero_lag_zero_mugs_only_cp_term(self):
        val = flow_potential(rank=1, m=4, lag=0.0, muggable_deques=0, psi_log3=10.0, epsilon=0.25)
        assert val == pytest.approx((320 / 0.25**2) * 10.0)

    def test_work_term_scales_with_rank(self):
        a = flow_potential(1, 4, 8.0, 2, float("-inf"), 0.25)
        b = flow_potential(2, 4, 8.0, 2, float("-inf"), 0.25)
        assert b == pytest.approx(2 * a)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            flow_potential(1, 4, 1.0, 0, 0.0, epsilon=0.5)
        with pytest.raises(ValueError):
            flow_potential(1, 4, 1.0, 0, 0.0, epsilon=0.0)

    def test_invalid_negative(self):
        with pytest.raises(ValueError):
            flow_potential(1, 4, -1.0, 0, 0.0, epsilon=0.25)


class TestLemma48NonIncrease:
    """ψ never increases during execution (between arrivals)."""

    def _trace(self):
        dags = [spawn_tree(3, 6), spawn_tree(2, 9), chain(30, 3)]
        jobs = [
            JobSpec(
                job_id=i,
                release=0.0,
                work=float(d.work),
                span=float(d.span),
                mode=ParallelismMode.DAG,
                dag=d,
            )
            for i, d in enumerate(dags)
        ]
        return Trace(jobs=jobs, m=2)

    def test_psi_monotone_non_increasing_per_job(self):
        trace = self._trace()
        rt = WsRuntime(trace, 2, DrepWS(), seed=4)
        rt.scheduler.reset(rt)
        rt._admit_arrivals()
        history: dict[int, list[float]] = {}
        guard = 0
        while rt._completed < len(trace) and guard < 10_000:
            snap = snapshot_runtime(rt)
            for job_id, psi in zip(snap.job_ids, snap.psi_log3):
                history.setdefault(job_id, []).append(psi)
            for w in rt.workers:
                rt._act(w)
            rt.step += 1
            guard += 1
        assert rt._completed == len(trace)
        for job_id, series in history.items():
            arr = np.array(series)
            diffs = np.diff(arr)
            assert (diffs <= 1e-9).all(), f"psi increased for job {job_id}"

    def test_snapshot_contents(self):
        trace = self._trace()
        rt = WsRuntime(trace, 2, DrepWS(), seed=4)
        rt.scheduler.reset(rt)
        rt._admit_arrivals()
        snap = snapshot_runtime(rt)
        assert set(snap.job_ids) == {0, 1, 2}
        assert all(np.isfinite(p) for p in snap.psi_log3)
        # arrival deques are muggable until a worker joins; at least the
        # jobs no worker took yet hold one muggable deque
        assert all(mug >= 0 for mug in snap.muggable)
        assert snap.psi_of(0) == snap.psi_log3[snap.job_ids.index(0)]
