"""Tests for repro.theory.preemptions — Theorem 1.2 budget records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import ScheduleResult
from repro.flowsim.engine import simulate
from repro.flowsim.policies import DrepSequential
from repro.theory.preemptions import PreemptionBudget, check_theorem_1_2
from repro.workloads.traces import generate_trace


def result(preemptions, switches, m=4, n=10):
    return ScheduleResult(
        scheduler="DREP",
        m=m,
        flow_times=np.ones(n),
        preemptions=preemptions,
        extra={"switches": switches},
    )


class TestBudgetRecord:
    def test_within_bound(self):
        b = check_theorem_1_2(result(preemptions=5, switches=30), n_jobs=10)
        assert b.switch_bound == 2 * 4 * 10
        assert b.within_switch_bound

    def test_violated_bound(self):
        b = check_theorem_1_2(result(preemptions=5, switches=1000), n_jobs=10)
        assert not b.within_switch_bound

    def test_sequential_ratio(self):
        b = check_theorem_1_2(result(preemptions=7, switches=30), n_jobs=10)
        assert b.sequential_ratio() == pytest.approx(0.7)

    def test_summary_keys(self):
        s = check_theorem_1_2(result(2, 3), n_jobs=10).summary()
        assert {"preemptions", "switches", "switch_bound_2mn", "within_switch_bound"} <= set(s)

    def test_zero_jobs(self):
        b = PreemptionBudget(0, 1, 0, 0, 0, 0)
        assert b.sequential_ratio() == 0.0


class TestLiveBudgets:
    @pytest.mark.parametrize("m", [2, 8])
    def test_sequential_drep_budgets(self, m):
        n = 3000
        trace = generate_trace(n, "finance", 0.6, m, seed=m)
        r = simulate(trace, m, DrepSequential(), seed=m)
        budget = check_theorem_1_2(r, n)
        assert budget.within_switch_bound
        # expected preemptions per job <= 1 (allow statistical slack)
        assert budget.sequential_ratio() <= 1.2
