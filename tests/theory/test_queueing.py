"""Tests for repro.theory.queueing — formulas and simulator cross-checks.

The cross-check tests are the most valuable in the suite: they validate
the flow-level simulator against *independent* closed-form queueing
results, not against itself.
"""

from __future__ import annotations

import pytest

from repro.core.job import ParallelismMode
from repro.flowsim.engine import simulate
from repro.flowsim.policies import FIFO, RoundRobin, SRPT
from repro.theory.queueing import (
    erlang_c,
    exp_second_moment,
    lognormal_second_moment,
    mg1_fcfs_mean_flow,
    mg1_ps_mean_flow,
    mm1_fcfs_mean_flow,
    mm1_srpt_mean_flow,
    mmm_fcfs_mean_flow,
)
from repro.workloads.distributions import ExponentialWork, LogNormalWork
from repro.workloads.traces import generate_trace


class TestFormulas:
    def test_mm1_fcfs(self):
        # rho = 0.5, E[S] = 1 -> E[T] = 2
        assert mm1_fcfs_mean_flow(0.5, 1.0) == pytest.approx(2.0)

    def test_mg1_fcfs_reduces_to_mm1(self):
        lam, s = 0.6, 1.0
        assert mg1_fcfs_mean_flow(lam, s, exp_second_moment(s)) == pytest.approx(
            mm1_fcfs_mean_flow(lam, s)
        )

    def test_mg1_ps(self):
        assert mg1_ps_mean_flow(0.5, 1.0) == pytest.approx(2.0)

    def test_srpt_beats_fcfs_and_ps_in_theory(self):
        lam, s = 0.7, 1.0
        srpt = mm1_srpt_mean_flow(lam, s)
        assert srpt < mm1_fcfs_mean_flow(lam, s)
        assert srpt < mg1_ps_mean_flow(lam, s)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mm1_fcfs_mean_flow(1.0, 1.0)
        with pytest.raises(ValueError):
            mg1_ps_mean_flow(2.0, 1.0)
        with pytest.raises(ValueError):
            mmm_fcfs_mean_flow(4.0, 1.0, 4)

    def test_erlang_c_limits(self):
        assert erlang_c(4, 0.0) == 0.0
        # heavily loaded: queuing probability approaches 1
        assert erlang_c(2, 1.99) > 0.97
        # single server: C(1, a) = a
        assert erlang_c(1, 0.3) == pytest.approx(0.3)

    def test_mmm_reduces_to_mm1(self):
        assert mmm_fcfs_mean_flow(0.5, 1.0, 1) == pytest.approx(
            mm1_fcfs_mean_flow(0.5, 1.0)
        )

    def test_second_moments(self):
        assert exp_second_moment(2.0) == 8.0
        # sigma=0: deterministic, E[X^2] = mean^2
        assert lognormal_second_moment(3.0, 0.0) == pytest.approx(9.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mg1_fcfs_mean_flow(0.5, 1.0, 0.5)  # second moment < mean^2
        with pytest.raises(ValueError):
            erlang_c(0, 0.1)
        with pytest.raises(ValueError):
            mm1_srpt_mean_flow(0.5, 1.0, grid=10)


def sim_mean_flow(policy, dist, load, n=60_000, seed=5):
    trace = generate_trace(
        n_jobs=n,
        distribution=dist,
        load=load,
        m=1,
        mode=ParallelismMode.SEQUENTIAL,
        seed=seed,
    )
    return simulate(trace, 1, policy, seed=seed).mean_flow


class TestSimulatorAgainstTheory:
    """The flow-level simulator must reproduce closed-form queueing."""

    def test_fifo_matches_mm1(self):
        sim = sim_mean_flow(FIFO(), ExponentialWork(1.0), load=0.6)
        theory = mm1_fcfs_mean_flow(0.6, 1.0)
        assert sim == pytest.approx(theory, rel=0.05)

    def test_fifo_matches_pollaczek_khinchine_lognormal(self):
        sigma = 0.8
        dist = LogNormalWork(1.0, sigma)
        sim = sim_mean_flow(FIFO(), dist, load=0.6)
        theory = mg1_fcfs_mean_flow(0.6, 1.0, lognormal_second_moment(1.0, sigma))
        assert sim == pytest.approx(theory, rel=0.08)

    def test_rr_matches_ps(self):
        sim = sim_mean_flow(RoundRobin(), ExponentialWork(1.0), load=0.6)
        theory = mg1_ps_mean_flow(0.6, 1.0)
        assert sim == pytest.approx(theory, rel=0.05)

    def test_rr_insensitivity(self):
        """PS mean flow depends only on the mean: heavy-tailed and light
        service distributions give the same RR mean flow."""
        heavy = sim_mean_flow(RoundRobin(), LogNormalWork(1.0, 1.2), load=0.6)
        light = sim_mean_flow(RoundRobin(), ExponentialWork(1.0), load=0.6)
        assert heavy == pytest.approx(light, rel=0.1)

    def test_srpt_matches_schrage_miller(self):
        sim = sim_mean_flow(SRPT(), ExponentialWork(1.0), load=0.7)
        theory = mm1_srpt_mean_flow(0.7, 1.0)
        assert sim == pytest.approx(theory, rel=0.06)
