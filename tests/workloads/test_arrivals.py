"""Tests for repro.workloads.arrivals — Poisson process and calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import (
    LOAD_LEVELS,
    poisson_arrivals,
    qps_for_load,
    work_scale_for_m,
)


class TestPoissonArrivals:
    def test_sorted_and_positive(self):
        rng = np.random.default_rng(0)
        t = poisson_arrivals(rng, 1000, rate=2.0)
        assert (np.diff(t) >= 0).all()
        assert (t > 0).all()

    def test_mean_interarrival(self):
        rng = np.random.default_rng(1)
        t = poisson_arrivals(rng, 100_000, rate=4.0)
        gaps = np.diff(np.concatenate([[0.0], t]))
        assert gaps.mean() == pytest.approx(0.25, rel=0.02)

    def test_start_offset(self):
        rng = np.random.default_rng(2)
        t = poisson_arrivals(rng, 10, rate=1.0, start=100.0)
        assert (t > 100.0).all()

    def test_empty(self):
        rng = np.random.default_rng(3)
        assert poisson_arrivals(rng, 0, rate=1.0).size == 0

    def test_invalid(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, -1, rate=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 1, rate=0.0)

    def test_exponential_gaps_memoryless(self):
        """CV of exponential inter-arrivals is 1."""
        rng = np.random.default_rng(5)
        t = poisson_arrivals(rng, 200_000, rate=1.0)
        gaps = np.diff(t)
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.02)


class TestCalibration:
    def test_qps_formula(self):
        # load 0.5 on 8 cores with unit-mean work => 4 jobs per time unit
        assert qps_for_load(0.5, 8, 1.0) == pytest.approx(4.0)

    def test_qps_scales_with_mean_work(self):
        assert qps_for_load(0.5, 8, 2.0) == pytest.approx(2.0)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            qps_for_load(0.0, 4, 1.0)
        with pytest.raises(ValueError):
            qps_for_load(1.0, 4, 1.0)

    def test_invalid_m_and_work(self):
        with pytest.raises(ValueError):
            qps_for_load(0.5, 0, 1.0)
        with pytest.raises(ValueError):
            qps_for_load(0.5, 4, 0.0)

    def test_load_levels_match_paper(self):
        assert LOAD_LEVELS == {"low": 0.5, "medium": 0.6, "high": 0.7}

    def test_work_scale(self):
        assert work_scale_for_m(16) == 16.0
        assert work_scale_for_m(16, base_m=4) == 4.0
        with pytest.raises(ValueError):
            work_scale_for_m(0)
