"""Tests for repro.workloads.distributions — means, tails, registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import (
    BoundedParetoWork,
    ExponentialWork,
    FixedWork,
    LogNormalWork,
    MixtureWork,
    UniformWork,
    bing_distribution,
    distribution_by_name,
    finance_distribution,
)


def sample_mean(dist, n=200_000, seed=0):
    rng = np.random.default_rng(seed)
    return float(dist.sample(rng, n).mean())


class TestLogNormal:
    def test_mean_matches(self):
        d = LogNormalWork(mean_work=2.5, sigma=0.8)
        assert sample_mean(d) == pytest.approx(2.5, rel=0.02)

    def test_sigma_zero_is_deterministic(self):
        d = LogNormalWork(mean_work=3.0, sigma=0.0)
        rng = np.random.default_rng(0)
        np.testing.assert_allclose(d.sample(rng, 10), 3.0)

    def test_positive_samples(self):
        d = LogNormalWork(1.0, 2.0)
        rng = np.random.default_rng(1)
        assert (d.sample(rng, 1000) > 0).all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            LogNormalWork(mean_work=0.0)
        with pytest.raises(ValueError):
            LogNormalWork(sigma=-1.0)


class TestBoundedPareto:
    def test_support(self):
        d = BoundedParetoWork(alpha=1.5, lo=2.0, hi=50.0)
        rng = np.random.default_rng(2)
        x = d.sample(rng, 10_000)
        assert x.min() >= 2.0 and x.max() <= 50.0

    def test_mean_formula(self):
        d = BoundedParetoWork(alpha=1.5, lo=1.0, hi=100.0)
        assert sample_mean(d) == pytest.approx(d.mean, rel=0.02)

    def test_mean_alpha_one(self):
        d = BoundedParetoWork(alpha=1.0, lo=1.0, hi=10.0)
        assert sample_mean(d) == pytest.approx(d.mean, rel=0.02)

    def test_invalid(self):
        with pytest.raises(ValueError):
            BoundedParetoWork(alpha=0.0)
        with pytest.raises(ValueError):
            BoundedParetoWork(lo=5.0, hi=5.0)


class TestSimpleDistributions:
    def test_exponential_mean(self):
        assert sample_mean(ExponentialWork(4.0)) == pytest.approx(4.0, rel=0.02)

    def test_uniform_mean(self):
        d = UniformWork(1.0, 3.0)
        assert d.mean == 2.0
        assert sample_mean(d) == pytest.approx(2.0, rel=0.01)

    def test_fixed(self):
        d = FixedWork(7.0)
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(d.sample(rng, 5), 7.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExponentialWork(0.0)
        with pytest.raises(ValueError):
            UniformWork(2.0, 1.0)
        with pytest.raises(ValueError):
            FixedWork(-1.0)


class TestMixture:
    def test_mean_is_weighted(self):
        d = MixtureWork([FixedWork(1.0), FixedWork(3.0)], [1.0, 1.0])
        assert d.mean == pytest.approx(2.0)
        assert sample_mean(d, n=50_000) == pytest.approx(2.0, rel=0.02)

    def test_weights_normalized(self):
        d = MixtureWork([FixedWork(1.0), FixedWork(3.0)], [2.0, 6.0])
        assert d.mean == pytest.approx(2.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            MixtureWork([], [])
        with pytest.raises(ValueError):
            MixtureWork([FixedWork(1.0)], [0.0])


class TestNamedWorkloads:
    def test_bing_unit_mean(self):
        assert sample_mean(bing_distribution(), n=400_000) == pytest.approx(1.0, rel=0.05)

    def test_finance_unit_mean(self):
        assert sample_mean(finance_distribution()) == pytest.approx(1.0, rel=0.02)

    def test_bing_heavier_tail_than_finance(self):
        """The substitution's load-bearing property: Bing has very large jobs."""
        rng_b = np.random.default_rng(3)
        rng_f = np.random.default_rng(3)
        b = bing_distribution().sample(rng_b, 200_000)
        f = finance_distribution().sample(rng_f, 200_000)
        assert np.percentile(b, 99.9) > 5 * np.percentile(f, 99.9)
        assert b.std() > 2 * f.std()

    def test_registry(self):
        for name in ["bing", "finance", "exponential", "fixed", "uniform"]:
            d = distribution_by_name(name)
            assert d.mean > 0

    def test_registry_unknown(self):
        with pytest.raises(KeyError):
            distribution_by_name("nope")


@settings(max_examples=30, deadline=None)
@given(
    mean=st.floats(0.1, 10.0),
    sigma=st.floats(0.0, 2.0),
    seed=st.integers(0, 1000),
)
def test_normalized_always_unit_mean(mean, sigma, seed):
    d = LogNormalWork(mean_work=mean, sigma=sigma).normalized()
    assert d.mean == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 500))
def test_samples_always_positive(seed, n):
    rng = np.random.default_rng(seed)
    for d in (bing_distribution(), finance_distribution()):
        assert (d.sample(rng, n) > 0).all()
