"""Tests for MMPP (bursty) arrivals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.arrivals import mmpp_arrivals, poisson_arrivals
from repro.workloads.traces import generate_trace


class TestMmppArrivals:
    def test_sorted_positive(self):
        rng = np.random.default_rng(0)
        t = mmpp_arrivals(rng, 2000, rate=1.0)
        assert (np.diff(t) >= 0).all()
        assert (t > 0).all()

    def test_mean_rate_calibrated(self):
        rng = np.random.default_rng(1)
        t = mmpp_arrivals(rng, 200_000, rate=3.0, burstiness=5.0)
        assert 200_000 / t[-1] == pytest.approx(3.0, rel=0.07)

    def test_overdispersed_vs_poisson(self):
        rng = np.random.default_rng(2)
        t = mmpp_arrivals(rng, 100_000, rate=2.0, burstiness=8.0, switch_rate=0.05)
        gaps = np.diff(t)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3  # markedly burstier than Poisson's CV = 1

    def test_burstiness_one_is_poisson_like(self):
        rng = np.random.default_rng(3)
        t = mmpp_arrivals(rng, 100_000, rate=2.0, burstiness=1.0)
        gaps = np.diff(t)
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_start_offset(self):
        rng = np.random.default_rng(4)
        t = mmpp_arrivals(rng, 10, rate=1.0, start=500.0)
        assert (t > 500.0).all()

    def test_empty(self):
        rng = np.random.default_rng(5)
        assert mmpp_arrivals(rng, 0, rate=1.0).size == 0

    def test_invalid(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            mmpp_arrivals(rng, 1, rate=0.0)
        with pytest.raises(ValueError):
            mmpp_arrivals(rng, 1, rate=1.0, burstiness=0.5)
        with pytest.raises(ValueError):
            mmpp_arrivals(rng, 1, rate=1.0, switch_rate=0.0)
        with pytest.raises(ValueError):
            mmpp_arrivals(rng, -1, rate=1.0)


class TestBurstyTraces:
    def test_trace_generation(self):
        t = generate_trace(
            5000, "finance", 0.6, 4, seed=7, arrival_process="mmpp", burstiness=6.0
        )
        assert len(t) == 5000
        assert t.meta["arrival_process"] == "mmpp"
        # long-run load still calibrated
        assert t.offered_load() == pytest.approx(0.6, rel=0.12)

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError, match="arrival process"):
            generate_trace(10, "finance", 0.5, 1, arrival_process="adversarial")

    def test_bursty_hurts_flow(self):
        """Same load, burstier arrivals => higher mean flow (any policy)."""
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import SRPT

        smooth = generate_trace(20_000, "finance", 0.7, 4, seed=8)
        bursty = generate_trace(
            20_000, "finance", 0.7, 4, seed=8, arrival_process="mmpp", burstiness=8.0
        )
        f_smooth = simulate(smooth, 4, SRPT()).mean_flow
        f_bursty = simulate(bursty, 4, SRPT()).mean_flow
        assert f_bursty > 1.2 * f_smooth
