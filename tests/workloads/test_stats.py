"""Tests for repro.workloads.stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.distributions import FixedWork, bing_distribution, finance_distribution
from repro.workloads.stats import WorkStats, distribution_stats, trace_stats
from repro.workloads.traces import generate_trace


class TestStats:
    def test_fixed_distribution(self):
        s = distribution_stats(FixedWork(3.0), n=1000)
        assert s.mean == pytest.approx(3.0)
        assert s.cv == pytest.approx(0.0)
        assert s.p50 == s.p99 == s.max == pytest.approx(3.0)

    def test_bing_heavier_than_finance(self):
        b = distribution_stats(bing_distribution(), n=50_000)
        f = distribution_stats(finance_distribution(), n=50_000)
        assert b.cv > 2 * f.cv
        assert b.top1pct_work_share > 3 * f.top1pct_work_share

    def test_trace_stats(self):
        t = generate_trace(2000, "finance", 0.5, 4, seed=0)
        s = trace_stats(t)
        assert s.n == 2000
        # work scaled by m=4, unit-mean distribution
        assert s.mean == pytest.approx(4.0, rel=0.1)

    def test_summary_keys(self):
        s = distribution_stats(FixedWork(1.0), n=100).summary()
        assert {"n", "mean", "cv", "p50", "p99", "max"} <= set(s)

    def test_empty_rejected(self):
        from repro.workloads.stats import _stats

        with pytest.raises(ValueError):
            _stats(np.array([]))

    def test_nonpositive_rejected(self):
        from repro.workloads.stats import _stats

        with pytest.raises(ValueError):
            _stats(np.array([1.0, 0.0]))

    def test_top_share_bounds(self):
        s = distribution_stats(bing_distribution(), n=10_000)
        assert 0.0 < s.top1pct_work_share < 1.0

    def test_dataclass_frozen(self):
        s = distribution_stats(FixedWork(1.0), n=10)
        with pytest.raises(AttributeError):
            s.mean = 2.0  # type: ignore[misc]

    def test_workstats_direct(self):
        s = WorkStats(3, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.34)
        assert s.n == 3
