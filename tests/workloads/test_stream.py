"""JobStream contract, lazy generators, and the re-streaming transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.workloads.stream import (
    JobStream,
    attach_dags_stream,
    calibrate_load,
    generate_stream,
    peak_window,
    resample_stream,
    scan_stream,
    stream_trace,
)
from repro.workloads.traces import attach_dags, generate_trace


def _spec(i, release, work=1.0):
    return JobSpec(job_id=i, release=release, work=work, span=work)


class TestJobStreamContract:
    def test_dense_ids_enforced(self):
        s = JobStream([_spec(0, 0.0), _spec(5, 1.0)])
        next(s)
        with pytest.raises(ValueError, match="dense"):
            next(s)

    def test_sorted_releases_enforced(self):
        s = JobStream([_spec(0, 2.0), _spec(1, 1.0)])
        next(s)
        with pytest.raises(ValueError, match="sorted by release"):
            next(s)

    def test_assign_ids_restamps(self):
        s = JobStream(
            [_spec(7, 0.0), _spec(3, 1.0)], assign_ids=True
        )
        assert [j.job_id for j in s] == [0, 1]
        assert s.n_consumed == 2

    def test_single_use(self):
        s = JobStream([_spec(0, 0.0)])
        assert len(list(s)) == 1
        assert list(s) == []  # exhausted, not restartable

    def test_materialize(self):
        trace = JobStream([_spec(0, 0.0), _spec(1, 1.0)], name="t").materialize()
        assert trace.name == "t"
        assert len(trace) == 2


class TestGenerateStream:
    def test_matches_generate_trace_bitwise(self):
        trace = generate_trace(500, "finance", 0.7, 8, seed=42)
        streamed = list(generate_stream(500, "finance", 0.7, 8, seed=42))
        assert len(streamed) == len(trace.jobs)
        for a, b in zip(trace.jobs, streamed):
            assert a.release == b.release  # bit-for-bit, no approx
            assert a.work == b.work
            assert a.span == b.span
            assert a.mode == b.mode

    def test_chunk_invariant_for_poisson_exponential(self):
        one = list(generate_stream(300, "exponential", 0.6, 4, seed=7, chunk_jobs=300))
        many = list(generate_stream(300, "exponential", 0.6, 4, seed=7, chunk_jobs=17))
        assert all(a == b for a, b in zip(one, many))

    def test_mmpp_stream(self):
        jobs = list(
            generate_stream(
                200, "finance", 0.6, 4, seed=3, arrival_process="mmpp"
            )
        )
        assert len(jobs) == 200
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            generate_stream(0, "finance", 0.5, 4)
        with pytest.raises(ValueError):
            generate_stream(10, "finance", 0.5, 4, chunk_jobs=0)
        with pytest.raises(ValueError):
            generate_stream(10, "finance", 0.5, 4, arrival_process="weird")


class TestScanAndCalibrate:
    def test_scan_stats(self):
        stats = scan_stream(
            [_spec(0, 0.0, 2.0), _spec(1, 5.0, 3.0), _spec(2, 10.0, 5.0)]
        )
        assert stats.n_jobs == 3
        assert stats.total_work == pytest.approx(10.0)
        assert stats.horizon == 10.0
        assert stats.offered_load(1) == pytest.approx(1.0)

    def test_calibrate_hits_target_load(self):
        trace = generate_trace(400, "finance", 0.9, 4, seed=5)
        out = calibrate_load(trace, 0.5, 4)
        stats = scan_stream(out)
        assert stats.offered_load(4) == pytest.approx(0.5, rel=1e-9)

    def test_calibrate_preserves_work_and_order(self):
        trace = generate_trace(100, "finance", 0.8, 4, seed=6)
        out = list(calibrate_load(trace, 0.4, 4))
        assert [j.work for j in out] == [j.work for j in trace.jobs]
        releases = [j.release for j in out]
        assert releases == sorted(releases)

    def test_calibrate_rejects_one_shot_iterator(self):
        jobs = iter([_spec(0, 0.0)])
        with pytest.raises(TypeError, match="re-streamable"):
            calibrate_load(jobs, 0.5, 4)

    def test_calibrate_validates(self):
        trace = generate_trace(10, "finance", 0.5, 2, seed=1)
        with pytest.raises(ValueError):
            calibrate_load(trace, 1.5, 2)
        with pytest.raises(ValueError):
            calibrate_load(trace, 0.5, 0)


class TestPeakWindow:
    def test_finds_the_busy_burst(self):
        # quiet - burst - quiet: the burst must be selected
        jobs = (
            [_spec(i, float(i) * 10.0, 1.0) for i in range(3)]
            + [_spec(3 + i, 100.0 + i, 50.0) for i in range(5)]
            + [_spec(8 + i, 300.0 + 10.0 * i, 1.0) for i in range(3)]
        )
        out = list(peak_window(lambda: iter(jobs), 20.0))
        assert len(out) == 5
        assert all(j.work == 50.0 for j in out)
        assert out[0].release == 0.0  # shifted to start at 0
        assert [j.job_id for j in out] == list(range(5))

    def test_rejects_empty_and_bad_window(self):
        with pytest.raises(ValueError):
            peak_window(lambda: iter([]), 10.0)
        with pytest.raises(ValueError):
            peak_window(lambda: iter([_spec(0, 0.0)]), 0.0)


class TestAttachDagsStream:
    def test_matches_attach_dags_bitwise(self):
        base = generate_trace(
            40,
            "finance",
            0.6,
            4,
            mode=ParallelismMode.FULLY_PARALLEL,
            seed=21,
            scale_work_with_m=False,
        )
        dense = attach_dags(base, parallelism=6, seed=33)
        streamed = list(
            attach_dags_stream(stream_trace(base), parallelism=6, seed=33)
        )
        for a, b in zip(dense.jobs, streamed):
            assert a.work == b.work
            assert a.span == b.span
            assert a.dag.work == b.dag.work
            assert a.dag.span == b.dag.span
            assert np.array_equal(a.dag.weights, b.dag.weights)

    def test_rejects_bad_work_unit(self):
        with pytest.raises(ValueError):
            attach_dags_stream([], parallelism=2, work_unit=0.0)


class TestResampleStream:
    def _source(self):
        return generate_trace(60, "bing", 0.7, 4, seed=9)

    def test_contract_and_support(self):
        src = self._source()
        out = list(resample_stream(src, 250, seed=5))
        assert [j.job_id for j in out] == list(range(250))
        assert all(
            a.release <= b.release for a, b in zip(out, out[1:])
        )
        src_bodies = {(j.work, j.span, j.mode) for j in src.jobs}
        assert {(j.work, j.span, j.mode) for j in out} <= src_bodies
        # releases are a running sum, so recovered gaps differ from the
        # drawn ones only by accumulation rounding
        src_gaps = sorted(
            b.release - a.release for a, b in zip(src.jobs, src.jobs[1:])
        )
        for a, b in zip(out, out[1:]):
            g = b.release - a.release
            nearest = min(src_gaps, key=lambda x: abs(x - g))
            assert g == pytest.approx(nearest, rel=1e-9, abs=1e-9)

    def test_deterministic_and_chunk_invariant(self):
        src = self._source()
        a = list(resample_stream(src, 200, seed=5, chunk_jobs=1))
        b = list(resample_stream(src, 200, seed=5, chunk_jobs=64))
        c = list(resample_stream(src, 200, seed=5))
        assert a == b == c
        d = list(resample_stream(src, 200, seed=6))
        assert a != d

    def test_factory_source(self):
        jobs = [_spec(i, float(i), work=1.0 + i) for i in range(10)]
        out = list(resample_stream(lambda: iter(jobs), 30, seed=0))
        assert len(out) == 30
        assert all(j.work in {1.0 + i for i in range(10)} for j in out)

    def test_rejects_degenerate_inputs(self):
        jobs = [_spec(0, 0.0)]
        with pytest.raises(ValueError, match=">= 2 source jobs"):
            resample_stream(lambda: iter(jobs), 10)
        with pytest.raises(ValueError, match="n_jobs"):
            resample_stream(self._source(), 0)
        with pytest.raises(ValueError, match="chunk_jobs"):
            resample_stream(self._source(), 10, chunk_jobs=0)

    def test_rejects_dag_jobs(self):
        base = generate_trace(
            10, "finance", 0.6, 4,
            mode=ParallelismMode.FULLY_PARALLEL, seed=2,
            scale_work_with_m=False,
        )
        dag_trace = attach_dags(base, parallelism=4, seed=2)
        with pytest.raises(ValueError, match="DAG"):
            resample_stream(dag_trace, 5)
