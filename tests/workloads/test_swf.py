"""SWF (Standard Workload Format) parser: fixture round-trip + rejection.

SWF here is the Parallel Workloads Archive *trace format*, not the SWF
(Smallest Work First) scheduling policy — see docs/workloads.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.job import ParallelismMode
from repro.workloads.swf import (
    SWF_FIELDS,
    SwfParseError,
    format_swf_line,
    read_swf,
    swf_stream,
)

FIXTURE = Path(__file__).resolve().parent.parent / "data" / "sanitized_cluster.swf"


def test_fixture_parses_completely():
    jobs = list(read_swf(FIXTURE))
    assert len(jobs) == 40
    # submit times non-decreasing in the fixture
    submits = [j.submit_time for j in jobs]
    assert submits == sorted(submits)
    assert all(len(SWF_FIELDS) == 18 for _ in (0,))


def test_fixture_round_trips():
    jobs = list(read_swf(FIXTURE))
    lines = [format_swf_line(j) for j in jobs]
    again = list(read_swf(lines))
    assert again == jobs


def test_stream_filters_and_densifies():
    specs = list(swf_stream(FIXTURE))
    # fixture has 40 records: one cancelled (status 5), one failed
    # (status 0) and one with unknown run time (-1) must be dropped
    assert len(specs) == 37
    assert [s.job_id for s in specs] == list(range(37))
    assert specs[0].release == 0.0  # shifted to start at 0
    releases = [s.release for s in specs]
    assert releases == sorted(releases)
    for s in specs:
        assert s.work > 0 and 0 < s.span <= s.work * (1 + 1e-12)
        assert s.mode in (
            ParallelismMode.SEQUENTIAL,
            ParallelismMode.FULLY_PARALLEL,
        )


def test_stream_field_mapping():
    recs = [r for r in read_swf(FIXTURE) if r.run_time > 0 and r.status in (-1, 1)]
    specs = list(swf_stream(FIXTURE))
    for rec, spec in zip(recs, specs):
        assert spec.span == pytest.approx(rec.run_time)
        assert spec.work == pytest.approx(rec.run_time * rec.procs)
        expected_mode = (
            ParallelismMode.FULLY_PARALLEL
            if rec.procs > 1
            else ParallelismMode.SEQUENTIAL
        )
        assert spec.mode is expected_mode


def test_stream_keeps_non_completed_when_asked():
    all_specs = list(swf_stream(FIXTURE, completed_only=False))
    # only the unknown-run-time record stays excluded
    assert len(all_specs) == 39


def test_time_scale_scales_everything():
    base = list(swf_stream(FIXTURE))
    scaled = list(swf_stream(FIXTURE, time_scale=0.5))
    assert len(scaled) == len(base)
    for b, s in zip(base, scaled):
        assert s.release == pytest.approx(b.release * 0.5)
        assert s.span == pytest.approx(b.span * 0.5)
        assert s.work == pytest.approx(b.work * 0.5)


def test_time_scale_must_be_positive():
    with pytest.raises(ValueError, match="time_scale"):
        swf_stream(FIXTURE, time_scale=0.0)


def test_wrong_field_count_rejected():
    lines = ["; header", "1 2 3"]
    with pytest.raises(SwfParseError, match="expected 18 fields"):
        list(read_swf(lines))


def test_non_numeric_field_rejected():
    line = "1 0 0 10 four " + " ".join(["-1"] * 13)
    with pytest.raises(SwfParseError, match="allocated_procs"):
        list(read_swf([line]))


def test_parse_error_carries_line_number():
    lines = ["; comment", "", "1 2 3 4"]
    with pytest.raises(SwfParseError) as exc:
        list(read_swf(lines))
    assert exc.value.lineno == 3


def test_comments_and_blanks_skipped():
    lines = [
        "; Version: 2.2",
        "",
        "1 0 0 10 2 -1 -1 2 20 -1 1 1 1 1 1 -1 -1 -1",
    ]
    jobs = list(read_swf(lines))
    assert len(jobs) == 1
    assert jobs[0].run_time == 10.0
    assert jobs[0].procs == 2


def test_procs_fallback_to_requested():
    line = "1 0 0 10 -1 -1 -1 4 20 -1 1 1 1 1 1 -1 -1 -1"
    (job,) = read_swf([line])
    assert job.procs == 4
    line = "1 0 0 10 -1 -1 -1 -1 20 -1 1 1 1 1 1 -1 -1 -1"
    (job,) = read_swf([line])
    assert job.procs == 1
