"""Tests for repro.workloads.traces — generation, DAG attach, round-trip."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.validate import validate_dag
from repro.workloads.traces import Trace, attach_dags, dag_for_work, generate_trace


class TestTraceContainer:
    def test_requires_sorted_releases(self):
        jobs = [
            JobSpec(job_id=0, release=5.0, work=1.0, span=1.0),
            JobSpec(job_id=1, release=1.0, work=1.0, span=1.0),
        ]
        with pytest.raises(ValueError, match="sorted"):
            Trace(jobs=jobs)

    def test_requires_dense_ids(self):
        jobs = [JobSpec(job_id=1, release=0.0, work=1.0, span=1.0)]
        with pytest.raises(ValueError, match="dense"):
            Trace(jobs=jobs)

    def test_total_work_and_horizon(self):
        jobs = [
            JobSpec(job_id=0, release=0.0, work=2.0, span=2.0),
            JobSpec(job_id=1, release=4.0, work=3.0, span=3.0),
        ]
        t = Trace(jobs=jobs, m=2)
        assert t.total_work == 5.0
        assert t.horizon == 4.0
        assert t.offered_load() == pytest.approx(5.0 / 8.0)

    def test_to_arrays(self):
        t = generate_trace(50, "finance", 0.5, 2, seed=0)
        arrays = t.to_arrays()
        assert arrays["work"].shape == (50,)
        assert (np.diff(arrays["release"]) >= 0).all()


class TestGenerateTrace:
    def test_job_count(self):
        t = generate_trace(100, "finance", 0.5, 4, seed=0)
        assert len(t) == 100

    def test_load_calibration(self):
        t = generate_trace(20_000, "finance", 0.6, 4, seed=1)
        assert t.offered_load() == pytest.approx(0.6, rel=0.05)

    def test_work_scaled_with_m(self):
        t1 = generate_trace(1000, "fixed", 0.5, 1, seed=2)
        t16 = generate_trace(1000, "fixed", 0.5, 16, seed=2)
        assert t16.jobs[0].work == pytest.approx(16 * t1.jobs[0].work)

    def test_unscaled_option(self):
        t = generate_trace(1000, "fixed", 0.5, 16, seed=2, scale_work_with_m=False)
        assert t.jobs[0].work == pytest.approx(1.0)
        # load target still holds because QPS adjusts
        assert t.offered_load() == pytest.approx(0.5, rel=0.1)

    def test_sequential_span(self):
        t = generate_trace(10, "finance", 0.5, 4, seed=3)
        for j in t.jobs:
            assert j.span == j.work

    def test_parallel_span(self):
        t = generate_trace(
            10, "finance", 0.5, 4, mode=ParallelismMode.FULLY_PARALLEL, seed=3
        )
        for j in t.jobs:
            assert j.span == pytest.approx(j.work / 4)

    def test_deterministic(self):
        a = generate_trace(50, "bing", 0.7, 8, seed=9)
        b = generate_trace(50, "bing", 0.7, 8, seed=9)
        assert [j.work for j in a.jobs] == [j.work for j in b.jobs]

    def test_seed_changes_trace(self):
        a = generate_trace(50, "bing", 0.7, 8, seed=9)
        b = generate_trace(50, "bing", 0.7, 8, seed=10)
        assert [j.work for j in a.jobs] != [j.work for j in b.jobs]

    def test_accepts_distribution_instance(self):
        from repro.workloads.distributions import FixedWork

        t = generate_trace(5, FixedWork(2.0), 0.5, 1, seed=0)
        assert t.jobs[0].work == pytest.approx(2.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate_trace(0, "finance", 0.5, 1)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        t = generate_trace(30, "finance", 0.5, 4, seed=5)
        path = tmp_path / "trace.json"
        t.save(path)
        back = Trace.load_file(path)
        assert len(back) == 30
        assert back.distribution == t.distribution
        assert back.jobs[7].work == pytest.approx(t.jobs[7].work)
        assert back.jobs[7].mode == t.jobs[7].mode

    def test_weights_round_trip(self):
        jobs = [JobSpec(0, 0.0, 1.0, 1.0, weight=7.5)]
        t = Trace(jobs=jobs)
        back = Trace.from_json(t.to_json())
        assert back.jobs[0].weight == 7.5

    def test_legacy_json_defaults_weight(self):
        t = Trace(jobs=[JobSpec(0, 0.0, 1.0, 1.0)])
        import json

        raw = json.loads(t.to_json())
        del raw["jobs"][0]["weight"]  # pre-weight format
        back = Trace.from_json(json.dumps(raw))
        assert back.jobs[0].weight == 1.0

    def test_transforms_preserve_weight(self):
        from repro.analysis.experiments import scale_trace
        from repro.workloads.traces import attach_dags

        jobs = [JobSpec(0, 0.0, 50.0, 50.0, weight=3.0)]
        t = Trace(jobs=jobs)
        assert scale_trace(t, 2.0).jobs[0].weight == 3.0
        assert attach_dags(t, parallelism=2).jobs[0].weight == 3.0


class TestDagForWork:
    def test_small_work_is_chain(self):
        d = dag_for_work(3, parallelism=8, rng=np.random.default_rng(0))
        assert d.span == d.work

    def test_parallelism_one_is_chain(self):
        d = dag_for_work(100, parallelism=1, rng=np.random.default_rng(0))
        assert d.span == d.work

    def test_large_work_parallel(self):
        d = dag_for_work(10_000, parallelism=16, rng=np.random.default_rng(0))
        validate_dag(d)
        assert d.work / d.span > 4  # real parallelism

    def test_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            dag_for_work(0, 1, rng)
        with pytest.raises(ValueError):
            dag_for_work(1, 0, rng)


class TestAttachDags:
    def test_specs_rewritten_from_dags(self, small_random_trace):
        from repro.analysis.experiments import scale_trace

        scaled = scale_trace(small_random_trace, 100.0)
        t = attach_dags(scaled, parallelism=4, seed=0)
        for j in t.jobs:
            assert j.dag is not None
            assert j.work == float(j.dag.work)
            assert j.span == float(j.dag.span)
            assert j.mode is ParallelismMode.DAG

    def test_work_approximates_source(self, small_random_trace):
        from repro.analysis.experiments import scale_trace

        scaled = scale_trace(small_random_trace, 200.0)
        t = attach_dags(scaled, parallelism=4, seed=0)
        total_src = sum(j.work for j in scaled.jobs)
        total_dag = sum(j.work for j in t.jobs)
        assert total_dag == pytest.approx(total_src, rel=0.15)

    def test_invalid_unit(self, small_random_trace):
        with pytest.raises(ValueError):
            attach_dags(small_random_trace, parallelism=4, work_unit=0.0)


@settings(max_examples=25, deadline=None)
@given(
    units=st.integers(1, 5000),
    par=st.integers(1, 32),
    seed=st.integers(0, 100),
)
def test_dag_for_work_always_valid(units, par, seed):
    d = dag_for_work(units, par, np.random.default_rng(seed))
    validate_dag(d)
    # realized work stays close to the request, up to fan-node overhead
    # (overshoot) and per-leaf rounding (undershoot)
    assert d.work >= max(1, units - 4 * par - 8)
    assert d.work <= max(4 * units, units + 8 * par)
