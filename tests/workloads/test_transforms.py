"""Tests for trace transformations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.traces import generate_trace
from repro.workloads.transforms import (
    jitter_releases,
    merge_traces,
    repeat_trace,
    slice_trace,
)
from tests.conftest import make_trace


class TestMerge:
    def test_job_count_and_order(self):
        a = make_trace([1.0, 2.0], releases=[0.0, 10.0])
        b = make_trace([3.0], releases=[5.0])
        merged = merge_traces(a, b)
        assert len(merged) == 3
        releases = [j.release for j in merged.jobs]
        assert releases == sorted(releases)
        assert [j.job_id for j in merged.jobs] == [0, 1, 2]

    def test_work_preserved(self):
        a = make_trace([1.0, 2.0])
        b = make_trace([4.0])
        assert merge_traces(a, b).total_work == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_traces()

    def test_simulatable(self):
        from repro.flowsim.engine import simulate
        from repro.flowsim.policies import SRPT

        a = generate_trace(100, "finance", 0.4, 2, seed=1)
        b = generate_trace(100, "bing", 0.3, 2, seed=2)
        merged = merge_traces(a, b)
        r = simulate(merged, 2, SRPT())
        assert np.isfinite(r.flow_times).all()


class TestSlice:
    def test_window_and_rebase(self):
        t = make_trace([1.0] * 4, releases=[0.0, 1.0, 2.0, 3.0])
        s = slice_trace(t, 1.0, 3.0)
        assert len(s) == 2
        assert [j.release for j in s.jobs] == [0.0, 1.0]

    def test_empty_slice_rejected(self):
        t = make_trace([1.0], releases=[0.0])
        with pytest.raises(ValueError, match="no jobs"):
            slice_trace(t, 10.0, 20.0)

    def test_invalid_bounds(self):
        t = make_trace([1.0])
        with pytest.raises(ValueError):
            slice_trace(t, 2.0, 1.0)


class TestRepeat:
    def test_count_and_spacing(self):
        t = make_trace([1.0, 1.0], releases=[0.0, 4.0])
        r = repeat_trace(t, times=3, gap=2.0)
        assert len(r) == 6
        # period = horizon (4) + gap (2) = 6
        assert r.jobs[2].release == pytest.approx(6.0)
        assert r.jobs[4].release == pytest.approx(12.0)

    def test_identity(self):
        t = make_trace([1.0, 2.0], releases=[0.0, 1.0])
        r = repeat_trace(t, times=1)
        assert [j.work for j in r.jobs] == [1.0, 2.0]

    def test_invalid(self):
        t = make_trace([1.0])
        with pytest.raises(ValueError):
            repeat_trace(t, times=0)
        with pytest.raises(ValueError):
            repeat_trace(t, times=2, gap=-1.0)


class TestJitter:
    def test_zero_sigma_identity(self):
        t = make_trace([1.0, 1.0], releases=[0.0, 5.0])
        j = jitter_releases(t, np.random.default_rng(0), sigma=0.0)
        assert [x.release for x in j.jobs] == [0.0, 5.0]

    def test_releases_stay_nonnegative_and_sorted(self):
        t = generate_trace(500, "finance", 0.5, 2, seed=3)
        j = jitter_releases(t, np.random.default_rng(1), sigma=2.0)
        releases = [x.release for x in j.jobs]
        assert min(releases) >= 0.0
        assert releases == sorted(releases)

    def test_invalid_sigma(self):
        t = make_trace([1.0])
        with pytest.raises(ValueError):
            jitter_releases(t, np.random.default_rng(0), sigma=-1.0)
