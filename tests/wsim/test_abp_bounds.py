"""Work-stealing execution-time bounds (Blumofe–Leiserson / ABP style).

For a *single* job on m workers, work stealing completes in
O(W/m + C) expected time.  The runtime simulator should honor this with
a small constant: these tests sweep random DAG shapes and machine sizes
and check ``makespan <= W/m + c*C`` for a generous c, plus the linear-
speedup regime (W/C >> m implies near-perfect speedup).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import fork_join, layered_random, spawn_tree
from repro.workloads.traces import Trace
from repro.wsim.runtime import simulate_ws
from repro.wsim.schedulers import DrepWS


def single_job_trace(dag, m):
    spec = JobSpec(
        job_id=0,
        release=0.0,
        work=float(dag.work),
        span=float(dag.span),
        mode=ParallelismMode.DAG,
        dag=dag,
    )
    return Trace(jobs=[spec], m=m)


@settings(max_examples=30, deadline=None)
@given(
    kind=st.integers(0, 2),
    depth=st.integers(1, 5),
    leaf=st.integers(2, 30),
    m=st.integers(1, 8),
    seed=st.integers(0, 200),
)
def test_abp_makespan_bound(kind, depth, leaf, m, seed):
    rng = np.random.default_rng(seed)
    if kind == 0:
        dag = spawn_tree(depth, leaf)
    elif kind == 1:
        dag = fork_join(depth, leaf, 5)
    else:
        dag = layered_random(depth, leaf, 6, rng)
    trace = single_job_trace(dag, m)
    r = simulate_ws(trace, m, DrepWS(), seed=seed)
    # one admission step of slack; c = 8 is generous vs the theory's O(1)
    assert r.makespan <= dag.work / m + 8 * dag.span + 2


class TestLinearSpeedupRegime:
    def test_ample_parallelism_gives_near_linear_speedup(self):
        """W/C >> m: makespan ~ W/m within a small factor."""
        dag = spawn_tree(depth=7, leaf_weight=50)  # 128 leaves
        assert dag.work / dag.span > 32
        for m in (2, 4, 8):
            trace = single_job_trace(dag, m)
            r = simulate_ws(trace, m, DrepWS(), seed=3)
            assert r.makespan <= 1.5 * dag.work / m + 4 * dag.span

    def test_speedup_monotone_in_m(self):
        dag = spawn_tree(depth=6, leaf_weight=40)
        spans = []
        for m in (1, 2, 4, 8):
            trace = single_job_trace(dag, m)
            spans.append(simulate_ws(trace, m, DrepWS(), seed=4).makespan)
        assert spans == sorted(spans, reverse=True)
        # 8 workers at least 4x faster than 1 on this very parallel job
        assert spans[0] / spans[-1] >= 4.0

    def test_steal_overhead_fraction_small_with_parallel_slack(self):
        dag = spawn_tree(depth=7, leaf_weight=60)
        trace = single_job_trace(dag, 4)
        r = simulate_ws(trace, 4, DrepWS(), seed=5)
        # steal attempts stay a small fraction of work steps (O(mC) vs W)
        assert r.steal_attempts <= 0.3 * r.extra["work_steps"]


class TestSequentialRegime:
    def test_chain_no_speedup(self):
        from repro.dag.generators import chain

        dag = chain(200, 1)
        t1 = simulate_ws(single_job_trace(dag, 1), 1, DrepWS(), seed=0).makespan
        t8 = simulate_ws(single_job_trace(dag, 8), 8, DrepWS(), seed=0).makespan
        assert t8 >= 0.95 * t1  # span-bound: extra workers cannot help
