"""Tests for the centralized greedy baseline (repro.wsim CentralGreedyWS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, spawn_tree, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, simulate_ws
from repro.wsim.schedulers import CentralGreedyWS, DrepWS


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestCentralGreedy:
    def test_single_chain(self):
        trace = dag_trace([chain(25, 1)])
        r = simulate_ws(trace, 2, CentralGreedyWS(), seed=0)
        # work conserving with zero dispatch cost: exactly work steps
        assert r.flow_times[0] == 25.0

    def test_no_steal_cost(self):
        trace = dag_trace([spawn_tree(4, 10)])
        r = simulate_ws(trace, 4, CentralGreedyWS(), seed=0)
        assert r.steal_attempts == 0
        assert r.muggings == 0
        assert r.preemptions == 0

    def test_greedy_makespan_bound(self):
        """Graham's bound for greedy: makespan <= W/m + C (single job)."""
        d = spawn_tree(5, 13)
        trace = dag_trace([d], m=4)
        r = simulate_ws(trace, 4, CentralGreedyWS(), seed=0)
        assert r.flow_times[0] <= d.work / 4 + d.span + 1

    def test_work_conservation(self, small_dag_trace):
        total = sum(int(j.dag.work) for j in small_dag_trace.jobs)
        r = simulate_ws(small_dag_trace, 4, CentralGreedyWS(), seed=1)
        assert r.extra["work_steps"] == total

    def test_all_jobs_finish_with_invariants(self, small_dag_trace):
        r = simulate_ws(
            small_dag_trace,
            4,
            CentralGreedyWS(),
            seed=1,
            config=WsConfig(debug_invariants=True),
        )
        assert np.isfinite(r.flow_times).all()

    def test_lower_overhead_than_work_stealing(self, small_dag_trace):
        """The point of the baseline: it bounds decentralization cost from
        below (no steal steps), so its utilization-normalized makespan is
        no worse than DREP's."""
        greedy = simulate_ws(small_dag_trace, 4, CentralGreedyWS(), seed=2)
        drep = simulate_ws(small_dag_trace, 4, DrepWS(), seed=2)
        assert greedy.makespan <= drep.makespan * 1.05

    def test_parallel_speedup(self):
        d = wide(16, 40)
        t1 = simulate_ws(dag_trace([d], m=1), 1, CentralGreedyWS(), seed=0)
        t8 = simulate_ws(dag_trace([d], m=8), 8, CentralGreedyWS(), seed=0)
        assert t8.flow_times[0] < t1.flow_times[0] / 4

    def test_registry_name(self):
        from repro.wsim.schedulers import ws_scheduler_by_name

        s = ws_scheduler_by_name("central-greedy")
        assert isinstance(s, CentralGreedyWS)
