"""Cross-counter accounting identities for the runtime simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wsim.runtime import WsConfig, WsRuntime
from repro.wsim.schedulers import DrepWS, RrQuantumWS, StealFirstWS, ws_scheduler_by_name

ALL = ["drep", "swf", "steal-first", "admit-first", "central-greedy", "rr", "laps"]


@pytest.mark.parametrize("name", ALL)
class TestAccountingIdentities:
    def test_steal_attempts_split(self, name, small_dag_trace):
        rt = WsRuntime(small_dag_trace, 4, ws_scheduler_by_name(name), seed=5)
        rt.run()
        c = rt.counters
        successes = c.steal_attempts - c.failed_steals
        assert successes >= 0
        assert c.muggings <= successes
        # node migrations are exactly the successful steals (incl. mugs)
        assert c.node_migrations == successes

    def test_preemptions_bounded_by_switches(self, name, small_dag_trace):
        rt = WsRuntime(small_dag_trace, 4, ws_scheduler_by_name(name), seed=5)
        rt.run()
        assert rt.counters.preemptions <= rt.counters.switches

    def test_worker_step_budget(self, name, small_dag_trace):
        """Every counted action consumed at most one worker-step, and the
        total cannot exceed the steps the machine had."""
        rt = WsRuntime(small_dag_trace, 4, ws_scheduler_by_name(name), seed=5)
        rt.run()
        c = rt.counters
        actions = c.work_steps + c.steal_attempts + c.idle_steps + c.overhead_steps
        assert actions <= rt.step * rt.m + rt.m


class TestOverheadAccounting:
    def test_overhead_steps_bounded_by_preemptions(self, small_dag_trace):
        cfg = WsConfig(preemption_overhead=6)
        rt = WsRuntime(small_dag_trace, 4, RrQuantumWS(quantum=40), seed=7, config=cfg)
        rt.run()
        c = rt.counters
        # a preemption applied before the worker's act in the same step
        # blocks that act too: up to overhead + 1 lost acts per preemption
        assert c.overhead_steps <= 7 * c.preemptions + 7
        assert c.overhead_steps >= c.preemptions  # each costs at least one

    def test_budget_counter_matches_result(self, small_dag_trace):
        rt = WsRuntime(small_dag_trace, 4, DrepWS(), seed=8)
        result = rt.run()
        assert result.preemptions == rt.counters.preemptions
        assert result.steal_attempts == rt.counters.steal_attempts
        assert result.muggings == rt.counters.muggings
        assert result.extra["switches"] == rt.counters.switches


class TestStealFirstBudgetCounter:
    def test_failed_steals_reset_on_success_or_admit(self, small_dag_trace):
        rt = WsRuntime(
            small_dag_trace, 4, StealFirstWS(steal_budget_factor=2.0), seed=9
        )
        rt.run()
        # after the run every worker's failed counter is a small number
        # bounded by the budget plus the final drain
        for w in rt.workers:
            assert w.failed_steals >= 0
