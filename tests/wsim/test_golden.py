"""Golden bit-for-bit equivalence tests for the work-stealing runtime.

``tests/data/golden_wsim.json`` was captured from the pre-optimization
runtime (before the PR-2 hot-path overhaul: macro-stepping, list-based
job state, inlined per-worker dispatch).  Every scheduler and config
variant must reproduce it exactly — flow times at full float precision,
all practicality counters, and the RNG end-state digest (which pins the
entire draw sequence, not just the outcomes).

If one of these fails after an engine change, the change altered
observable behavior; regenerate the goldens only for a deliberate
semantic change, never to absorb a perf regression
(``PYTHONPATH=src python tests/data/gen_goldens.py``).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.wsim.runtime import WsConfig

DATA_DIR = Path(__file__).resolve().parents[1] / "data"

_spec = importlib.util.spec_from_file_location(
    "gen_goldens", DATA_DIR / "gen_goldens.py"
)
gen_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen_goldens)

GOLDEN = json.loads((DATA_DIR / "golden_wsim.json").read_text())

CASES = {
    **{name: (name, WsConfig(), None) for name in gen_goldens.WS_SCHEDULERS},
    "drep/check=node": ("drep", WsConfig(preempt_check="node"), None),
    "drep/check=step": ("drep", WsConfig(preempt_check="step"), None),
    "drep/overhead=2": ("drep", WsConfig(preemption_overhead=2), None),
    "drep/hetero": ("drep", WsConfig(), np.array([2.0, 1.0, 1.0, 0.5])),
}


@pytest.fixture(scope="module")
def trace():
    return gen_goldens.ws_trace()


def test_golden_covers_all_cases():
    assert set(CASES) == set(GOLDEN)


@pytest.mark.parametrize("key", sorted(CASES))
def test_bit_for_bit(trace, key):
    scheduler, config, speeds = CASES[key]
    got = gen_goldens.run_ws_case(
        trace, 4, scheduler, seed=9, config=config, speeds=speeds
    )
    # the JSON round-trip normalizes float reprs exactly like the stored
    # golden, so == is a bit-for-bit comparison
    assert json.loads(json.dumps(got)) == GOLDEN[key]
