"""Heterogeneous-speed event-horizon jumps ≡ unit stepping, bit for bit.

Extends ``test_macro_equivalence.py`` along the axes the homogeneous
tests cannot reach:

* **dyadic speeds** — per-worker speeds on the exactness grid
  (powers of two), where the kernel's one-shot ``k * speed`` subtraction
  must reproduce ``k`` per-step subtractions exactly;
* **the vectorized SoA min** — ``_h_vec`` normally engages only on
  machines with >= 64 workers; tests flip it on small machines so both
  the inline-scalar and the numpy reduction paths are exercised;
* **the steal-target fast paths** — disabling the scheduler's
  ``steal_target`` hook (rebinding it to the base-class default) turns
  off both the batched stuck-steal replay *and* the run-loop's inline
  fast-fail shortcut, giving a reference run that goes through
  ``out_of_work``/``steal_within`` every time;
* **off-grid speeds** — must fall back to pure per-step execution and
  say so in ``perf.exactness_fallbacks``.

Every run of the same instance must agree on flow times, makespan, all
practicality counters, and the RNG end state.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, fork_join, layered_random, spawn_tree
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsRuntime
from repro.wsim.schedulers import DrepWS, SwfApproxWS, ws_scheduler_by_name
from repro.wsim.schedulers.base import WsScheduler

SCHEDULERS = ["drep", "swf", "steal-first", "admit-first"]

#: the dyadic exactness grid: every product/difference stays exact
DYADIC_SPEEDS = (0.25, 0.5, 1.0, 2.0, 4.0)


class _NoHookDrep(DrepWS):
    # rebinding to the base default makes the runtime resolve the hook
    # to None: no batched stuck-steal replay, no inline fast-fail
    steal_target = WsScheduler.steal_target


class _NoHookSwf(SwfApproxWS):
    steal_target = WsScheduler.steal_target


_NO_HOOK = {"drep": _NoHookDrep, "swf": _NoHookSwf}


@st.composite
def hetero_instance(draw):
    n = draw(st.integers(1, 5))
    m = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    speeds = np.array(
        [draw(st.sampled_from(DYADIC_SPEEDS)) for _ in range(m)]
    )
    jobs = []
    t = 0
    for i in range(n):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            dag = chain(int(rng.integers(20, 300)), int(rng.integers(10, 100)))
        elif kind == 1:
            dag = spawn_tree(int(rng.integers(0, 4)), int(rng.integers(1, 30)))
        elif kind == 2:
            dag = fork_join(
                int(rng.integers(1, 3)),
                int(rng.integers(1, 6)),
                int(rng.integers(1, 40)),
            )
        else:
            dag = layered_random(
                int(rng.integers(1, 4)), int(rng.integers(1, 5)), 4, rng
            )
        jobs.append(
            JobSpec(
                job_id=i,
                release=float(t),
                work=float(dag.work),
                span=float(dag.span),
                mode=ParallelismMode.DAG,
                dag=dag,
            )
        )
        t += int(rng.integers(0, 60))
    return Trace(jobs=jobs, m=m), m, speeds


def _run(
    trace,
    m,
    sched_name,
    seed,
    speeds,
    *,
    unit_stepped=False,
    force_vec=False,
    no_hook=False,
):
    if no_hook:
        scheduler = _NO_HOOK[sched_name]()
    else:
        scheduler = ws_scheduler_by_name(sched_name)
    rt = WsRuntime(trace, m, scheduler, seed=seed, speeds=speeds)
    if force_vec:
        rt._h_vec = True
    observer = (lambda _rt: None) if unit_stepped else None
    result = rt.run(observer)
    state = json.dumps(rt.rng.bit_generator.state, sort_keys=True, default=str)
    return result, dataclasses.asdict(rt.counters), state, rt.perf


def _assert_all_identical(runs):
    ref_result, ref_counters, ref_state, _ = runs[0]
    for result, counters, state, _ in runs[1:]:
        np.testing.assert_array_equal(result.flow_times, ref_result.flow_times)
        assert result.makespan == ref_result.makespan
        assert counters == ref_counters
        assert state == ref_state


@settings(max_examples=25, deadline=None)
@given(
    inst=hetero_instance(),
    sched_idx=st.integers(0, len(SCHEDULERS) - 1),
    seed=st.integers(0, 50),
)
def test_hetero_macro_equals_unit(inst, sched_idx, seed):
    trace, m, speeds = inst
    name = SCHEDULERS[sched_idx]
    _assert_all_identical(
        [
            _run(trace, m, name, seed, speeds),
            _run(trace, m, name, seed, speeds, unit_stepped=True),
            _run(trace, m, name, seed, speeds, force_vec=True),
        ]
    )


@settings(max_examples=15, deadline=None)
@given(
    inst=hetero_instance(),
    sched_name=st.sampled_from(sorted(_NO_HOOK)),
    seed=st.integers(0, 50),
)
def test_steal_hook_is_pure_perf(inst, sched_name, seed):
    """With and without steal_target: same results to the last RNG bit."""
    trace, m, speeds = inst
    _assert_all_identical(
        [
            _run(trace, m, sched_name, seed, speeds),
            _run(trace, m, sched_name, seed, speeds, no_hook=True),
            _run(trace, m, sched_name, seed, speeds, no_hook=True, unit_stepped=True),
        ]
    )


def _long_chain_trace(m=2):
    dag = chain(600, 200)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(i * 7),
            work=float(dag.work),
            span=float(dag.span),
            mode=ParallelismMode.DAG,
            dag=dag,
        )
        for i in range(3)
    ]
    return Trace(jobs=jobs, m=m)


def test_hetero_horizon_path_actually_engages():
    trace = _long_chain_trace()
    speeds = np.array([2.0, 0.5])
    r_macro = _run(trace, 2, "drep", 3, speeds)
    assert r_macro[3].horizon_jumps > 0
    assert r_macro[3].exactness_fallbacks == 0
    _assert_all_identical(
        [r_macro, _run(trace, 2, "drep", 3, speeds, unit_stepped=True)]
    )


def test_off_grid_speeds_fall_back_and_record_it():
    """Off-grid speeds: per-step execution, counted as a fallback."""
    trace = _long_chain_trace()
    speeds = np.array([1.3, 0.7])  # not representable on the dyadic grid
    r_macro = _run(trace, 2, "drep", 3, speeds)
    assert r_macro[3].exactness_fallbacks > 0
    assert r_macro[3].horizon_jumps == 0
    _assert_all_identical(
        [r_macro, _run(trace, 2, "drep", 3, speeds, unit_stepped=True)]
    )
