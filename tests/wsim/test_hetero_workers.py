"""Tests for heterogeneous worker speeds in the work-stealing runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, simulate_ws
from repro.wsim.schedulers import AdmitFirstWS, DrepWS


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestSpeedValidation:
    def test_shape_checked(self):
        trace = dag_trace([chain(10, 1)])
        with pytest.raises(ValueError, match="shape"):
            simulate_ws(trace, 2, DrepWS(), speeds=np.ones(3))

    def test_positive_checked(self):
        trace = dag_trace([chain(10, 1)])
        with pytest.raises(ValueError, match="positive"):
            simulate_ws(trace, 2, DrepWS(), speeds=np.array([1.0, 0.0]))

    def test_none_is_unit_speed(self):
        trace = dag_trace([chain(40, 1)])
        a = simulate_ws(trace, 2, DrepWS(), seed=1)
        b = simulate_ws(trace, 2, DrepWS(), seed=1, speeds=np.ones(2))
        np.testing.assert_array_equal(a.flow_times, b.flow_times)


class TestSpeedSemantics:
    def test_fast_worker_finishes_chain_proportionally_faster(self):
        dag = chain(120, 4)
        slow = simulate_ws(dag_trace([dag], m=1), 1, AdmitFirstWS(), seed=0)
        fast = simulate_ws(
            dag_trace([dag], m=1), 1, AdmitFirstWS(), seed=0, speeds=np.array([4.0])
        )
        # one admission step of slack; otherwise exactly 4x
        assert fast.flow_times[0] <= slow.flow_times[0] / 4 + 4

    def test_work_accounting_unchanged(self):
        dag = wide(6, 30)
        trace = dag_trace([dag], m=3)
        r = simulate_ws(
            trace, 3, DrepWS(), seed=2, speeds=np.array([2.0, 1.0, 0.5])
        )
        # executed units equal the DAG's work (no phantom work from
        # overshoot: the excess is wasted, not counted)
        assert r.extra["work_steps"] == pytest.approx(dag.work)

    def test_invariants_hold(self, small_dag_trace):
        speeds = np.array([4.0, 2.0, 1.0, 1.0])
        r = simulate_ws(
            small_dag_trace,
            4,
            DrepWS(),
            seed=3,
            speeds=speeds,
            config=WsConfig(debug_invariants=True),
        )
        assert np.isfinite(r.flow_times).all()

    def test_more_capacity_never_hurts_much(self, small_dag_trace):
        base = simulate_ws(small_dag_trace, 4, DrepWS(), seed=4)
        boosted = simulate_ws(
            small_dag_trace, 4, DrepWS(), seed=4, speeds=np.full(4, 4.0)
        )
        assert boosted.mean_flow < base.mean_flow

    def test_slowdowns_use_machine_bounds(self, small_dag_trace):
        speeds = np.array([4.0, 1.0, 1.0, 1.0])
        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=5, speeds=speeds)
        assert (r.slowdowns >= 1.0 - 1e-9).all()


class TestMixedSpeedFairness:
    def test_drep_speed_oblivious_vs_uniform(self):
        """DREP ignores speeds; on a strongly heterogeneous machine its
        flow exceeds the same-total-speed uniform machine's (the wsim
        face of the X11 finding)."""
        dags = [wide(8, 40) for _ in range(10)]
        trace = dag_trace(dags, releases=[i * 30.0 for i in range(10)], m=4)
        uniform = simulate_ws(trace, 4, DrepWS(), seed=6, speeds=np.full(4, 2.0))
        skewed = simulate_ws(
            trace, 4, DrepWS(), seed=6, speeds=np.array([5.0, 1.0, 1.0, 1.0])
        )
        assert skewed.mean_flow >= uniform.mean_flow * 0.9
