"""Tests for LapsQuantumWS — the implementable LAPS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, simulate_ws
from repro.wsim.schedulers import DrepWS, LapsQuantumWS


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LapsQuantumWS(beta=0.0)
        with pytest.raises(ValueError):
            LapsQuantumWS(beta=1.5)
        with pytest.raises(ValueError):
            LapsQuantumWS(quantum=0)

    def test_name(self):
        assert LapsQuantumWS(beta=0.25, quantum=10).name == "LAPS(b=0.25,q=10)"


class TestBehaviour:
    def test_completes_all_jobs(self, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, LapsQuantumWS(), seed=1)
        assert np.isfinite(r.flow_times).all()

    def test_invariants(self, small_dag_trace):
        simulate_ws(
            small_dag_trace,
            4,
            LapsQuantumWS(quantum=20),
            seed=1,
            config=WsConfig(debug_invariants=True),
        )

    def test_conservation(self, small_dag_trace):
        total = sum(int(j.dag.work) for j in small_dag_trace.jobs)
        r = simulate_ws(small_dag_trace, 4, LapsQuantumWS(), seed=2)
        assert r.extra["work_steps"] == total

    def test_latest_arrival_favored(self):
        """beta=0.5 of 2 concurrent jobs: the later arrival gets the
        machine until it finishes (the LAPS signature)."""
        big = wide(4, 120)
        late = chain(30, 1)
        trace = dag_trace([big, late], releases=[0.0, 20.0], m=2)
        laps = simulate_ws(trace, 2, LapsQuantumWS(beta=0.5, quantum=10), seed=0)
        # the late job's flow is near its span: it preempted the big one
        assert laps.flow_times[1] <= 3 * late.span

    def test_preempts_more_than_drep(self, small_dag_trace):
        laps = simulate_ws(small_dag_trace, 4, LapsQuantumWS(quantum=20), seed=3)
        drep = simulate_ws(small_dag_trace, 4, DrepWS(), seed=3)
        assert laps.preemptions >= drep.preemptions

    def test_determinism(self, small_dag_trace):
        a = simulate_ws(small_dag_trace, 4, LapsQuantumWS(), seed=5)
        b = simulate_ws(small_dag_trace, 4, LapsQuantumWS(), seed=5)
        np.testing.assert_array_equal(a.flow_times, b.flow_times)

    def test_beta_one_serves_everyone(self, small_dag_trace):
        """beta=1 degenerates to quantum-RR-like equi over all jobs."""
        r = simulate_ws(small_dag_trace, 4, LapsQuantumWS(beta=1.0, quantum=25), seed=6)
        assert np.isfinite(r.flow_times).all()

    def test_overhead_interaction(self, small_dag_trace):
        cfg = WsConfig(preemption_overhead=8)
        r = simulate_ws(small_dag_trace, 4, LapsQuantumWS(quantum=30), seed=7, config=cfg)
        assert np.isfinite(r.flow_times).all()
        assert r.extra["overhead_steps"] > 0
