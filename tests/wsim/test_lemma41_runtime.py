"""Direct runtime verification of Lemma 4.1 (uniform processor assignment).

Lemma 4.1: under DREP, at any time each processor is working on any
given active job with probability 1/|A(t)|.  The flow-level tests check
an observable consequence; here we measure the distribution itself in
the work-stealing runtime via the observer hook: sample (worker, job)
assignments across time and seeds, and test per-job occupancy against
the uniform m/|A(t)| prediction.
"""

from __future__ import annotations

import numpy as np

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsRuntime
from repro.wsim.schedulers import DrepWS


def identical_jobs_trace(n_jobs: int, width: int, strand: int, m: int) -> Trace:
    dags = [wide(width, strand) for _ in range(n_jobs)]
    jobs = [
        JobSpec(
            job_id=i,
            release=0.0,
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, d in enumerate(dags)
    ]
    return Trace(jobs=jobs, m=m)


class OccupancySampler:
    """Accumulate worker-share samples per job while |A| is constant."""

    def __init__(self, expect_active: int) -> None:
        self.expect_active = expect_active
        self.samples: list[np.ndarray] = []

    def __call__(self, rt) -> None:
        if len(rt.active) != self.expect_active:
            return  # only sample the steady window with all jobs alive
        counts = np.zeros(self.expect_active)
        id_index = {job.job_id: k for k, job in enumerate(rt.active)}
        for w in rt.workers:
            if w.job is not None and w.job.job_id in id_index:
                counts[id_index[w.job.job_id]] += 1
        self.samples.append(counts)


class TestLemma41Runtime:
    def test_identical_jobs_get_uniform_worker_shares(self):
        """3 identical jobs, 6 workers: expected share 2 workers each."""
        n_jobs, m = 3, 6
        totals = np.zeros(n_jobs)
        n_samples = 0
        for seed in range(12):
            trace = identical_jobs_trace(n_jobs, width=8, strand=60, m=m)
            sampler = OccupancySampler(expect_active=n_jobs)
            WsRuntime(trace, m, DrepWS(), seed=seed).run(observer=sampler)
            if sampler.samples:
                totals += np.sum(sampler.samples, axis=0)
                n_samples += len(sampler.samples)
        shares = totals / totals.sum()
        # uniform prediction: 1/3 each; allow modest sampling deviation
        assert n_samples > 100
        assert np.abs(shares - 1.0 / n_jobs).max() < 0.08

    def test_mean_workers_close_to_m_over_a(self):
        """E[p_i(t)] = m / |A(t)| (the paper's 'n/|A(t)| workers in
        expectation' implementation remark, Sec. V-B)."""
        n_jobs, m = 4, 8
        per_job_means = []
        for seed in range(10):
            trace = identical_jobs_trace(n_jobs, width=8, strand=50, m=m)
            sampler = OccupancySampler(expect_active=n_jobs)
            WsRuntime(trace, m, DrepWS(), seed=seed).run(observer=sampler)
            if sampler.samples:
                per_job_means.append(np.mean(sampler.samples, axis=0))
        grand = np.mean(per_job_means, axis=0)
        expected = m / n_jobs
        assert np.abs(grand - expected).max() < 0.75

    def test_no_job_starves_of_workers(self):
        """Over a long window every active job holds >= 1 worker most of
        the time (m > |A|), the anti-starvation face of uniformity."""
        n_jobs, m = 2, 6
        trace = identical_jobs_trace(n_jobs, width=8, strand=80, m=m)
        sampler = OccupancySampler(expect_active=n_jobs)
        WsRuntime(trace, m, DrepWS(), seed=3).run(observer=sampler)
        samples = np.array(sampler.samples)
        starved_fraction = (samples == 0).mean()
        assert starved_fraction < 0.1
