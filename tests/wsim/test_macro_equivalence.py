"""The event-horizon kernel must be unobservable: bulk jumps ≡ unit steps.

The runtime's bulk path (``WsRuntime._horizon_jump``) advances every
worker ``k`` units in one update whenever every live worker is purely
executing for ``k`` steps.  Passing an observer disables the bulk path
while changing nothing else, so the two runs must agree bit-for-bit on
every output: flow times, makespan, all practicality counters, and the
RNG end state (bulk jumps never consume draws).  Heterogeneous speeds
are covered by ``test_hetero_equivalence.py``.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, fork_join, layered_random, spawn_tree
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, WsRuntime
from repro.wsim.schedulers import ws_scheduler_by_name

SCHEDULERS = ["drep", "steal-first", "admit-first", "swf", "rr"]


@st.composite
def random_dag_trace(draw):
    n = draw(st.integers(1, 6))
    m = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0
    for i in range(n):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            # long sequential nodes: the macro path's best case
            dag = chain(int(rng.integers(20, 400)), int(rng.integers(10, 120)))
        elif kind == 1:
            dag = spawn_tree(int(rng.integers(0, 4)), int(rng.integers(1, 30)))
        elif kind == 2:
            dag = fork_join(
                int(rng.integers(1, 3)),
                int(rng.integers(1, 6)),
                int(rng.integers(1, 40)),
            )
        else:
            dag = layered_random(
                int(rng.integers(1, 4)), int(rng.integers(1, 5)), 4, rng
            )
        jobs.append(
            JobSpec(
                job_id=i,
                release=float(t),
                work=float(dag.work),
                span=float(dag.span),
                mode=ParallelismMode.DAG,
                dag=dag,
            )
        )
        t += int(rng.integers(0, 80))
    return Trace(jobs=jobs, m=m), m


def _run(trace, m, sched_name, seed, config, unit_stepped):
    rt = WsRuntime(
        trace, m, ws_scheduler_by_name(sched_name), seed=seed, config=config
    )
    # an observer disables macro-stepping but is otherwise inert
    observer = (lambda _rt: None) if unit_stepped else None
    result = rt.run(observer)
    state = json.dumps(rt.rng.bit_generator.state, sort_keys=True, default=str)
    return result, dataclasses.asdict(rt.counters), state, rt.perf


def _assert_identical(trace, m, sched_name, seed, config=WsConfig()):
    r_macro, c_macro, rng_macro, _ = _run(
        trace, m, sched_name, seed, config, unit_stepped=False
    )
    r_unit, c_unit, rng_unit, _ = _run(
        trace, m, sched_name, seed, config, unit_stepped=True
    )
    np.testing.assert_array_equal(r_macro.flow_times, r_unit.flow_times)
    assert r_macro.makespan == r_unit.makespan
    assert c_macro == c_unit
    assert rng_macro == rng_unit


@settings(max_examples=25, deadline=None)
@given(
    inst=random_dag_trace(),
    sched_idx=st.integers(0, len(SCHEDULERS) - 1),
    seed=st.integers(0, 50),
)
def test_macro_equals_unit_random(inst, sched_idx, seed):
    trace, m = inst
    _assert_identical(trace, m, SCHEDULERS[sched_idx], seed)


@settings(max_examples=10, deadline=None)
@given(inst=random_dag_trace(), seed=st.integers(0, 20))
def test_macro_equals_unit_immediate_flags(inst, seed):
    # "step" mode is the delicate case: a live flag must veto the jump
    trace, m = inst
    _assert_identical(
        trace, m, "drep", seed, config=WsConfig(preempt_check="step")
    )


def test_horizon_path_actually_engages():
    """Guard against the bulk path silently never firing."""
    dag = chain(600, 200)  # three 200-unit nodes, nothing to steal
    jobs = [
        JobSpec(
            job_id=i,
            release=float(i * 7),
            work=float(dag.work),
            span=float(dag.span),
            mode=ParallelismMode.DAG,
            dag=dag,
        )
        for i in range(3)
    ]
    trace = Trace(jobs=jobs, m=2)
    _, _, _, perf = _run(
        trace, 2, "drep", 3, WsConfig(), unit_stepped=False
    )
    assert perf.horizon_jumps > 0
    assert perf.horizon_steps_saved > 0
    assert perf.exactness_fallbacks == 0
    _, _, _, perf_unit = _run(
        trace, 2, "drep", 3, WsConfig(), unit_stepped=True
    )
    assert perf_unit.horizon_jumps == 0
