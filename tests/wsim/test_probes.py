"""Tests for per-job runtime probes (JobStatsCollector)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, wide
from repro.workloads.traces import Trace
from repro.wsim.probes import JobStatsCollector
from repro.wsim.runtime import WsRuntime
from repro.wsim.schedulers import AdmitFirstWS, DrepWS, StealFirstWS


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestCollector:
    @staticmethod
    def run_with(trace, m, scheduler, seed):
        collector = JobStatsCollector()
        rt = WsRuntime(trace, m, scheduler, seed=seed)
        rt.run(observer=collector)
        collector.finalize(rt)
        return collector

    def test_all_jobs_observed(self, small_dag_trace):
        collector = self.run_with(small_dag_trace, 4, DrepWS(), 1)
        assert set(collector.stats) == {j.job_id for j in small_dag_trace.jobs}

    def test_lifecycle_ordering(self, small_dag_trace):
        collector = self.run_with(small_dag_trace, 4, DrepWS(), 1)
        for s in collector.stats.values():
            assert s.first_service_step is not None
            assert s.admission_wait is not None and s.admission_wait >= 0
            assert s.service_span is not None and s.service_span >= 1

    def test_immediate_admission_when_idle(self):
        trace = dag_trace([chain(20, 1)])
        collector = self.run_with(trace, 2, DrepWS(), 0)
        assert collector.stats[0].admission_wait == 0

    def test_steal_first_delays_admission(self):
        """With an idle worker available, admit-first starts the newcomer
        immediately while steal-first burns its failed-steal budget first."""
        big = chain(200, 1)  # sequential: the second worker sits idle
        small = chain(10, 1)
        trace = dag_trace([big, small], releases=[0.0, 5.0], m=2)
        sf = self.run_with(trace, 2, StealFirstWS(steal_budget_factor=16.0), 1)
        af = self.run_with(trace, 2, AdmitFirstWS(), 1)
        assert af.stats[1].admission_wait <= 2
        assert sf.stats[1].admission_wait >= af.stats[1].admission_wait + 5

    def test_mean_workers_bounded_by_m(self, small_dag_trace):
        collector = self.run_with(small_dag_trace, 4, DrepWS(), 2)
        for s in collector.stats.values():
            assert 0.0 <= s.mean_workers <= 4.0

    def test_summary_rows(self, small_dag_trace):
        collector = self.run_with(small_dag_trace, 4, DrepWS(), 3)
        rows = collector.summary_rows()
        assert len(rows) == len(small_dag_trace)
        assert {"job_id", "admission_wait", "service_span", "mean_workers"} <= set(rows[0])
        assert collector.mean_admission_wait() >= 0.0

    def test_empty_collector(self):
        c = JobStatsCollector()
        assert c.summary_rows() == []
        assert c.mean_admission_wait() == 0.0
