"""Pin the PCG64 stream facts the event-horizon kernel relies on.

The runtime replays ``k`` skipped steal attempts as **one** batched
victim draw (``WsRuntime._horizon_jump``) and skips the draw entirely
for single-victim steals (``steal_within``, ``DrepWS.on_completion``).
Both shortcuts are bit-exact only because of how numpy's ``Generator``
consumes PCG64 state:

* ``integers(1)`` returns 0 **without advancing the generator** — the
  bounded-rejection sampler short-circuits on a single-value range;
* a sequence of scalar ``integers(b_i)`` calls produces the same values
  *and* the same end state as one array call ``integers([b_0, ..])``;
* hence ``k`` repeats of a fixed per-step bound pattern equal one
  ``integers(np.tile(pattern, k))`` call.

These are observed properties of numpy's implementation, not documented
API guarantees — this module is the tripwire that fires if a numpy
upgrade ever changes the stream, which would silently break the
runtime's bulk-jump ≡ unit-step equivalence.
"""

from __future__ import annotations

import json

import numpy as np

SEED = 12345


def _state(rng: np.random.Generator) -> str:
    return json.dumps(rng.bit_generator.state, sort_keys=True, default=str)


def test_integers_one_returns_zero_without_consuming_state():
    rng = np.random.default_rng(SEED)
    before = _state(rng)
    assert int(rng.integers(1)) == 0
    assert _state(rng) == before
    # the array form also consumes nothing for all-1 bounds
    assert rng.integers(np.ones(5, dtype=np.int64)).tolist() == [0] * 5
    assert _state(rng) == before


def test_scalar_draws_equal_one_sized_draw():
    a = np.random.default_rng(SEED)
    b = np.random.default_rng(SEED)
    scalars = [int(a.integers(7)) for _ in range(40)]
    batch = b.integers(7, size=40)
    assert scalars == batch.tolist()
    assert _state(a) == _state(b)


def test_scalar_draws_with_varying_bounds_equal_array_bounds_draw():
    bounds = [3, 7, 2, 5, 11, 4, 9, 6, 3, 8]
    a = np.random.default_rng(SEED)
    b = np.random.default_rng(SEED)
    scalars = [int(a.integers(n)) for n in bounds]
    batch = b.integers(np.asarray(bounds))
    assert scalars == batch.tolist()
    assert _state(a) == _state(b)


def test_tiled_bounds_equal_interleaved_per_step_draws():
    # the exact shape of the kernel's batched stuck-steal replay: each
    # skipped step draws once per stuck worker (bounds pattern), k times
    per_step = [5, 3, 9]
    k = 17
    a = np.random.default_rng(SEED)
    b = np.random.default_rng(SEED)
    interleaved = [int(a.integers(n)) for _ in range(k) for n in per_step]
    batched = b.integers(np.tile(np.asarray(per_step), k))
    assert interleaved == batched.tolist()
    assert _state(a) == _state(b)
