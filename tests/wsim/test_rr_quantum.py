"""Tests for RrQuantumWS and the preemption-overhead model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, simulate_ws
from repro.wsim.schedulers import DrepWS, RrQuantumWS


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestRrQuantum:
    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            RrQuantumWS(quantum=0)

    def test_name_includes_quantum(self):
        assert RrQuantumWS(quantum=25).name == "RR(q=25)"

    def test_single_job_completes(self):
        trace = dag_trace([chain(30, 1)])
        r = simulate_ws(trace, 2, RrQuantumWS(quantum=10), seed=0)
        assert np.isfinite(r.flow_times).all()

    def test_preempts_every_quantum_with_many_jobs(self):
        """Two long jobs on one worker: the worker must bounce between
        them every quantum, so preemptions ~ makespan / quantum."""
        trace = dag_trace([chain(200, 1), chain(200, 1)], m=1)
        r = simulate_ws(trace, 1, RrQuantumWS(quantum=20), seed=0)
        assert r.preemptions >= (r.makespan / 20) - 4

    def test_fairness_between_identical_jobs(self):
        """Equi-partition: identical jobs finish near-simultaneously."""
        trace = dag_trace([chain(300, 1), chain(300, 1)], m=1)
        r = simulate_ws(trace, 1, RrQuantumWS(quantum=10), seed=0)
        assert abs(r.flow_times[0] - r.flow_times[1]) <= 40

    def test_work_conservation(self, small_dag_trace):
        total = sum(int(j.dag.work) for j in small_dag_trace.jobs)
        r = simulate_ws(small_dag_trace, 4, RrQuantumWS(quantum=30), seed=1)
        assert r.extra["work_steps"] == total

    def test_invariants(self, small_dag_trace):
        simulate_ws(
            small_dag_trace,
            4,
            RrQuantumWS(quantum=30),
            seed=1,
            config=WsConfig(debug_invariants=True),
        )

    def test_more_preemptions_than_drep(self, small_dag_trace):
        rr = simulate_ws(small_dag_trace, 4, RrQuantumWS(quantum=20), seed=2)
        drep = simulate_ws(small_dag_trace, 4, DrepWS(), seed=2)
        assert rr.preemptions > drep.preemptions


class TestPreemptionOverhead:
    def test_invalid_overhead(self):
        with pytest.raises(ValueError):
            WsConfig(preemption_overhead=-1)

    def test_zero_overhead_no_overhead_steps(self, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=3)
        assert r.extra["overhead_steps"] == 0

    def test_overhead_steps_counted(self, small_dag_trace):
        cfg = WsConfig(preemption_overhead=5)
        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=3, config=cfg)
        if r.preemptions:
            assert r.extra["overhead_steps"] > 0
            assert r.extra["overhead_steps"] <= 5 * r.preemptions + 5

    def test_overhead_slows_completion(self):
        """With heavy per-preemption cost, quantum-RR's makespan grows."""
        trace = dag_trace([chain(150, 1), chain(150, 1)], m=1)
        fast = simulate_ws(trace, 1, RrQuantumWS(quantum=10), seed=0)
        slow = simulate_ws(
            trace,
            1,
            RrQuantumWS(quantum=10),
            seed=0,
            config=WsConfig(preemption_overhead=10),
        )
        assert slow.makespan > fast.makespan

    def test_work_still_conserved_under_overhead(self, small_dag_trace):
        total = sum(int(j.dag.work) for j in small_dag_trace.jobs)
        cfg = WsConfig(preemption_overhead=7)
        r = simulate_ws(small_dag_trace, 4, RrQuantumWS(quantum=25), seed=4, config=cfg)
        assert r.extra["work_steps"] == total


class TestNodeMigrations:
    def test_migrations_counted_as_steals_plus_muggings(self, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=5)
        # every successful steal or mugging is one node migration
        successes = r.steal_attempts - r.extra["failed_steals"]
        assert r.migrations == successes

    def test_single_worker_no_migrations(self):
        trace = dag_trace([wide(4, 30)], m=1)
        r = simulate_ws(trace, 1, DrepWS(), seed=0)
        # one worker: nothing can migrate except the initial arrival mug
        assert r.migrations <= 1
