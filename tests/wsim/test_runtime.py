"""Tests for repro.wsim.runtime — execution semantics and conservation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, spawn_tree, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, WsimError, simulate_ws
from repro.wsim.schedulers import AdmitFirstWS, DrepWS, StealFirstWS, SwfApproxWS


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


ALL_SCHEDULERS = [DrepWS, SwfApproxWS, StealFirstWS, AdmitFirstWS]


class TestSingleJob:
    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_chain_runs_near_span(self, scheduler_cls):
        """One sequential chain: flow = work + small admission overhead
        (steal-first burns its failed-steal budget before admitting)."""
        trace = dag_trace([chain(20, 1)])
        r = simulate_ws(trace, 2, scheduler_cls(), seed=0)
        assert 21.0 <= r.flow_times[0] <= 21.0 + 2 * 2 + 1

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_parallel_job_speeds_up(self, scheduler_cls):
        d = wide(8, 50)
        t1 = simulate_ws(dag_trace([d]), 1, scheduler_cls(), seed=0)
        t4 = simulate_ws(dag_trace([d]), 4, scheduler_cls(), seed=0)
        assert t4.flow_times[0] < 0.5 * t1.flow_times[0]

    def test_work_conservation(self):
        d = spawn_tree(4, 20)
        trace = dag_trace([d])
        r = simulate_ws(trace, 4, DrepWS(), seed=1)
        assert r.extra["work_steps"] == d.work

    def test_flow_at_least_span_over_steps(self):
        d = spawn_tree(3, 30)
        trace = dag_trace([d])
        r = simulate_ws(trace, 8, DrepWS(), seed=1)
        assert r.flow_times[0] >= d.span

    def test_greedy_bound(self):
        """Work stealing respects the classic W/m + O(C) style bound
        loosely: a single job on m cores cannot take longer than W + C
        steps (very weak sanity bound including steal overhead)."""
        d = spawn_tree(4, 10)
        trace = dag_trace([d])
        r = simulate_ws(trace, 4, DrepWS(), seed=2)
        assert r.flow_times[0] <= d.work + 10 * d.span


class TestMultiJob:
    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_all_jobs_finish(self, scheduler_cls, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, scheduler_cls(), seed=3)
        assert np.isfinite(r.flow_times).all()
        assert (r.flow_times >= 1).all()

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_work_conservation_multi(self, scheduler_cls, small_dag_trace):
        total = sum(int(j.dag.work) for j in small_dag_trace.jobs)
        r = simulate_ws(small_dag_trace, 4, scheduler_cls(), seed=3)
        assert r.extra["work_steps"] == total

    @pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
    def test_invariants_hold_throughout(self, scheduler_cls, small_dag_trace):
        config = WsConfig(debug_invariants=True)
        simulate_ws(small_dag_trace, 4, scheduler_cls(), seed=3, config=config)

    def test_determinism(self, small_dag_trace):
        a = simulate_ws(small_dag_trace, 4, DrepWS(), seed=7)
        b = simulate_ws(small_dag_trace, 4, DrepWS(), seed=7)
        np.testing.assert_array_equal(a.flow_times, b.flow_times)
        assert a.steal_attempts == b.steal_attempts

    def test_seed_sensitivity(self, small_dag_trace):
        a = simulate_ws(small_dag_trace, 4, DrepWS(), seed=7)
        b = simulate_ws(small_dag_trace, 4, DrepWS(), seed=8)
        assert not np.array_equal(a.flow_times, b.flow_times)


class TestConfig:
    def test_requires_dags(self, small_random_trace):
        with pytest.raises(ValueError, match="DAG"):
            simulate_ws(small_random_trace, 2, DrepWS())

    def test_invalid_m(self, small_dag_trace):
        with pytest.raises(ValueError):
            simulate_ws(small_dag_trace, 0, DrepWS())

    def test_invalid_preempt_check(self):
        with pytest.raises(ValueError):
            WsConfig(preempt_check="sometimes")

    def test_max_steps_guard(self, small_dag_trace):
        with pytest.raises(WsimError, match="exceeded"):
            simulate_ws(
                small_dag_trace, 4, DrepWS(), config=WsConfig(max_steps=3)
            )

    @pytest.mark.parametrize("mode", ["steal", "node", "step"])
    def test_all_preempt_modes_complete(self, mode, small_dag_trace):
        config = WsConfig(preempt_check=mode)
        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=5, config=config)
        assert np.isfinite(r.flow_times).all()


class TestIdleJump:
    def test_gap_between_jobs_skipped(self):
        trace = dag_trace([chain(5, 1), chain(5, 1)], releases=[0.0, 1000.0])
        r = simulate_ws(trace, 2, AdmitFirstWS(), seed=0)
        # makespan reflects the second arrival, not busy-waiting cost
        assert 1000 <= r.makespan <= 1010
        assert r.flow_times[1] <= 10
