"""Property-based tests for the work-stealing runtime across schedulers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, fork_join, layered_random, spawn_tree
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, simulate_ws
from repro.wsim.schedulers import (
    AdmitFirstWS,
    CentralGreedyWS,
    DrepWS,
    StealFirstWS,
    SwfApproxWS,
)

SCHEDULERS = [DrepWS, SwfApproxWS, StealFirstWS, AdmitFirstWS, CentralGreedyWS]


@st.composite
def random_dag_trace(draw):
    n = draw(st.integers(1, 6))
    m = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0
    for i in range(n):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            dag = chain(int(rng.integers(1, 40)), int(rng.integers(1, 5)))
        elif kind == 1:
            dag = spawn_tree(int(rng.integers(0, 4)), int(rng.integers(1, 10)))
        elif kind == 2:
            dag = fork_join(
                int(rng.integers(1, 3)),
                int(rng.integers(1, 6)),
                int(rng.integers(1, 10)),
            )
        else:
            dag = layered_random(
                int(rng.integers(1, 4)), int(rng.integers(1, 5)), 4, rng
            )
        jobs.append(
            JobSpec(
                job_id=i,
                release=float(t),
                work=float(dag.work),
                span=float(dag.span),
                mode=ParallelismMode.DAG,
                dag=dag,
            )
        )
        t += int(rng.integers(0, 30))
    return Trace(jobs=jobs, m=m), m


@settings(max_examples=30, deadline=None)
@given(inst=random_dag_trace(), sched_idx=st.integers(0, len(SCHEDULERS) - 1))
def test_runtime_invariants_random(inst, sched_idx):
    trace, m = inst
    scheduler = SCHEDULERS[sched_idx]()
    result = simulate_ws(
        trace, m, scheduler, seed=9, config=WsConfig(debug_invariants=True)
    )

    # completion and accounting
    assert np.isfinite(result.flow_times).all()
    total_work = sum(int(j.dag.work) for j in trace.jobs)
    assert result.extra["work_steps"] == total_work

    # flow >= span (critical path is a hard floor in unit steps) and
    # >= 1 (admission happens no earlier than the release step)
    for spec, f in zip(trace.jobs, result.flow_times):
        assert f >= 1.0
        assert f >= spec.dag.span * (1 - 1e-12)

    # the step counter accounts for every worker action
    actions = (
        result.extra["work_steps"]
        + result.steal_attempts
        + result.extra["idle_steps"]
    )
    # switches and admissions may or may not consume a step depending on
    # the path, so the inequality is one-sided: a makespan of S steps with
    # m workers provides at most S*m actions (minus idle jumps)
    assert actions <= result.makespan * m + m


@settings(max_examples=15, deadline=None)
@given(inst=random_dag_trace(), seed=st.integers(0, 20))
def test_drep_runtime_budgets_random(inst, seed):
    trace, m = inst
    result = simulate_ws(trace, m, DrepWS(), seed=seed)
    n = len(trace)
    assert result.extra["switches"] <= 2 * m * n
    assert result.preemptions <= m * n


@settings(max_examples=10, deadline=None)
@given(inst=random_dag_trace())
def test_schedulers_agree_on_total_work(inst):
    trace, m = inst
    works = set()
    for cls in SCHEDULERS:
        r = simulate_ws(trace, m, cls(), seed=4)
        works.add(r.extra["work_steps"])
    assert len(works) == 1  # same instance, same executed units
