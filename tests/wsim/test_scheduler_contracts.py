"""Generic contract tests for every registered runtime scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wsim.runtime import WsConfig, simulate_ws
from repro.wsim.schedulers import ws_scheduler_by_name

ALL_SCHEDULERS = ["drep", "swf", "steal-first", "admit-first", "central-greedy", "rr", "laps"]


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
class TestSchedulerContracts:
    def test_completes_and_conserves(self, name, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, ws_scheduler_by_name(name), seed=2)
        assert np.isfinite(r.flow_times).all()
        total = sum(int(j.dag.work) for j in small_dag_trace.jobs)
        assert r.extra["work_steps"] == total

    def test_deterministic(self, name, small_dag_trace):
        a = simulate_ws(small_dag_trace, 4, ws_scheduler_by_name(name), seed=6)
        b = simulate_ws(small_dag_trace, 4, ws_scheduler_by_name(name), seed=6)
        np.testing.assert_array_equal(a.flow_times, b.flow_times)
        assert a.steal_attempts == b.steal_attempts
        assert a.preemptions == b.preemptions

    def test_invariants(self, name, small_dag_trace):
        simulate_ws(
            small_dag_trace,
            4,
            ws_scheduler_by_name(name),
            seed=2,
            config=WsConfig(debug_invariants=True),
        )

    def test_flow_floor(self, name, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, ws_scheduler_by_name(name), seed=2)
        for spec, f in zip(small_dag_trace.jobs, r.flow_times):
            assert f >= 1.0
            assert f >= spec.dag.span * (1 - 1e-12)

    def test_single_worker(self, name, small_dag_trace):
        r = simulate_ws(small_dag_trace, 1, ws_scheduler_by_name(name), seed=3)
        assert np.isfinite(r.flow_times).all()

    def test_heterogeneous_speeds(self, name, small_dag_trace):
        speeds = np.array([2.0, 1.0, 1.0, 0.5])
        r = simulate_ws(
            small_dag_trace, 4, ws_scheduler_by_name(name), seed=4, speeds=speeds
        )
        assert np.isfinite(r.flow_times).all()
        total = sum(int(j.dag.work) for j in small_dag_trace.jobs)
        assert r.extra["work_steps"] == pytest.approx(total)
