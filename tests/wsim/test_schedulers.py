"""Behavioral tests for the runtime schedulers (paper Sec. V-B semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, simulate_ws
from repro.wsim.schedulers import (
    AdmitFirstWS,
    DrepWS,
    StealFirstWS,
    SwfApproxWS,
    ws_scheduler_by_name,
)


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


class TestRegistry:
    def test_names(self):
        for name in ["drep", "swf", "steal-first", "admit-first"]:
            s = ws_scheduler_by_name(name)
            assert s.name

    def test_unknown(self):
        with pytest.raises(KeyError):
            ws_scheduler_by_name("mystery")

    def test_kwargs(self):
        s = ws_scheduler_by_name("steal-first", steal_budget_factor=8.0)
        assert s.steal_budget_factor == 8.0
        assert "8" in s.name

    def test_flags(self):
        assert DrepWS().affinity and not DrepWS().clairvoyant
        assert SwfApproxWS().clairvoyant
        assert not StealFirstWS().affinity
        assert not AdmitFirstWS().affinity


class TestDrepWsSemantics:
    def test_no_preemptions_without_concurrent_arrivals(self):
        trace = dag_trace([chain(10, 1), chain(10, 1)], releases=[0.0, 100.0])
        r = simulate_ws(trace, 2, DrepWS(), seed=0)
        assert r.preemptions == 0

    def test_muggings_happen(self, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=1)
        assert r.muggings > 0

    def test_theorem_1_2_switch_budget(self, small_dag_trace):
        n = len(small_dag_trace)
        r = simulate_ws(small_dag_trace, 4, DrepWS(), seed=1)
        assert r.extra["switches"] <= 2 * 4 * n

    def test_preempt_check_step_preempts_faster(self):
        """The 'step' mode reacts to arrivals at least as fast as 'steal'."""
        big = wide(4, 400)
        small = [chain(10, 1) for _ in range(6)]
        trace = dag_trace([big] + small, releases=[0.0] + [50.0 + i for i in range(6)], m=4)
        flows = {}
        for mode in ("steal", "step"):
            r = simulate_ws(
                trace, 4, DrepWS(), seed=3, config=WsConfig(preempt_check=mode)
            )
            flows[mode] = np.sort(r.flow_times)[:6].mean()  # the small jobs
        # immediate preemption can only help the small jobs (statistically)
        assert flows["step"] <= flows["steal"] * 1.5

    def test_workers_counter_consistent(self, small_dag_trace):
        from repro.wsim.runtime import WsRuntime

        rt = WsRuntime(small_dag_trace, 4, DrepWS(), seed=2)
        rt.run()
        # after the run every worker's job is None or done
        for w in rt.workers:
            assert w.job is None or w.job.done


class TestSwfSemantics:
    def test_prefers_smallest_job(self):
        """With one core, SWF-approx runs the small job before returning to
        the big one once the worker runs out of work on the small one."""
        big = chain(200, 200)  # single 200-unit node: cannot be preempted
        small = chain(5, 1)
        trace = dag_trace([big, small], releases=[0.0, 1.0], m=1)
        r = simulate_ws(trace, 1, SwfApproxWS(), seed=0)
        # the worker cannot abandon the big node mid-execution (node
        # granularity approximation), so the small job waits for it
        assert r.flow_times[1] >= 190

    def test_small_jobs_favored_with_fine_granularity(self):
        big = chain(200, 4)  # preemptable every 4 units at node boundaries?
        # note: SWF-approx switches only when out of work, so even fine
        # granularity does not preempt; the small job still waits for big
        # unless a second core frees up.
        small = chain(5, 1)
        trace = dag_trace([big, small], releases=[0.0, 1.0], m=2)
        r = simulate_ws(trace, 2, SwfApproxWS(), seed=0)
        # with two cores the idle core picks the small job quickly
        assert r.flow_times[1] <= 20


class TestStealFirstSemantics:
    def test_budget_delays_admission(self):
        """A larger failed-steal budget delays new jobs (the paper's
        observation that more failed attempts make it worse)."""
        big = wide(8, 100)
        smalls = [chain(8, 1) for _ in range(8)]
        trace = dag_trace(
            [big] + smalls, releases=[0.0] + [10.0] * 8, m=4
        )
        tight = simulate_ws(trace, 4, StealFirstWS(steal_budget_factor=1.0), seed=1)
        loose = simulate_ws(trace, 4, StealFirstWS(steal_budget_factor=64.0), seed=1)
        small_ids = np.arange(1, 9)
        assert (
            loose.flow_times[small_ids].mean()
            >= tight.flow_times[small_ids].mean() * 0.9
        )

    def test_single_worker_admits(self):
        trace = dag_trace([chain(5, 1), chain(5, 1)], m=1)
        r = simulate_ws(trace, 1, StealFirstWS(), seed=0)
        assert np.isfinite(r.flow_times).all()


class TestAdmitFirstSemantics:
    def test_admission_is_immediate(self):
        """Admit-first takes queued jobs before stealing: with m cores and
        m queued jobs every job starts within the first steps."""
        dags = [chain(50, 1) for _ in range(4)]
        trace = dag_trace(dags, m=4)
        r = simulate_ws(trace, 4, AdmitFirstWS(), seed=0)
        # all four run concurrently: flow ~ 51 each, far below serial 200
        assert r.flow_times.max() <= 60

    def test_admissions_counted(self, small_dag_trace):
        r = simulate_ws(small_dag_trace, 4, AdmitFirstWS(), seed=0)
        assert r.extra["admissions"] == len(small_dag_trace)
