"""Streaming wsim (`simulate_ws_stream`) ≡ materialized `simulate_ws`.

The work-stealing runtime completes jobs out of id order, so the
streaming path buffers finished jobs in a small heap and folds them into
StreamingMetrics strictly by job id — these tests pin that the whole
pipeline (lazy DAG attachment included) is bit-for-bit the dense run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import ParallelismMode
from repro.core.metrics import StreamingMetrics
from repro.faults.plan import random_crash_plan
from repro.workloads.stream import attach_dags_stream, stream_trace
from repro.workloads.traces import attach_dags, generate_trace
from repro.wsim import (
    WsRuntime,
    simulate_ws,
    simulate_ws_stream,
    ws_scheduler_by_name,
)

SCHEDULERS = [
    "drep",
    "swf",
    "steal-first",
    "admit-first",
    "central-greedy",
    "rr",
    "laps",
]


def _dag_trace(n=40, seed=21, parallelism=6):
    from repro.analysis.experiments import scale_trace

    base = generate_trace(
        n,
        "finance",
        0.6,
        4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=seed,
        scale_work_with_m=False,
    )
    return attach_dags(scale_trace(base, 150.0), parallelism=parallelism, seed=seed)


def _assert_equivalent(dense, streamed):
    rebuilt = streamed.to_schedule_result()
    assert np.array_equal(rebuilt.flow_times, dense.flow_times)
    assert rebuilt.makespan == dense.makespan
    assert rebuilt.preemptions == dense.preemptions
    assert rebuilt.migrations == dense.migrations
    assert rebuilt.steal_attempts == dense.steal_attempts
    assert rebuilt.muggings == dense.muggings
    for key in ("switches", "work_steps", "idle_steps", "utilization"):
        assert streamed.extra[key] == dense.extra[key], key
    if dense.min_flows is not None:
        assert np.array_equal(rebuilt.min_flows, dense.min_flows)
    assert rebuilt.weights is None and dense.weights is None


@pytest.mark.parametrize("key", SCHEDULERS)
def test_all_schedulers_equivalent(key):
    trace = _dag_trace()
    dense = simulate_ws(trace, 4, ws_scheduler_by_name(key), seed=8)
    streamed = simulate_ws_stream(
        stream_trace(trace),
        4,
        ws_scheduler_by_name(key),
        seed=8,
        keep_flow_times=True,
    )
    _assert_equivalent(dense, streamed)


def test_lazy_dag_attachment_equivalent():
    """attach_dags_stream inline with the runtime ≡ attach_dags upfront."""
    from repro.analysis.experiments import scale_trace

    base = generate_trace(
        30,
        "finance",
        0.6,
        4,
        mode=ParallelismMode.FULLY_PARALLEL,
        seed=31,
        scale_work_with_m=False,
    )
    scaled = scale_trace(base, 150.0)
    dense = simulate_ws(
        attach_dags(scaled, parallelism=6, seed=33),
        4,
        ws_scheduler_by_name("drep"),
        seed=4,
    )
    streamed = simulate_ws_stream(
        attach_dags_stream(stream_trace(scaled), parallelism=6, seed=33),
        4,
        ws_scheduler_by_name("drep"),
        seed=4,
        keep_flow_times=True,
    )
    _assert_equivalent(dense, streamed)


def test_heterogeneous_speeds_equivalent():
    trace = _dag_trace(n=30, seed=41)
    speeds = np.array([2.0, 1.0, 1.0, 0.5])
    dense = simulate_ws(
        trace, 4, ws_scheduler_by_name("drep"), seed=6, speeds=speeds
    )
    streamed = simulate_ws_stream(
        stream_trace(trace),
        4,
        ws_scheduler_by_name("drep"),
        seed=6,
        speeds=speeds,
        keep_flow_times=True,
    )
    _assert_equivalent(dense, streamed)


@pytest.mark.parametrize("key", ["drep", "steal-first"])
def test_fault_plans_equivalent(key):
    trace = _dag_trace(n=30, seed=51)
    horizon = trace.horizon + 5000.0

    def plan():
        return random_crash_plan(4, horizon, seed=2, crash_rate=0.001, mttr=50.0)

    dense = simulate_ws(
        trace, 4, ws_scheduler_by_name(key), seed=9, faults=plan()
    )
    streamed = simulate_ws_stream(
        stream_trace(trace),
        4,
        ws_scheduler_by_name(key),
        seed=9,
        faults=plan(),
        keep_flow_times=True,
    )
    _assert_equivalent(dense, streamed)
    assert streamed.extra["faults"] == dense.extra["faults"]


def test_streaming_summary_matches_dense():
    trace = _dag_trace(n=50, seed=61)
    dense = simulate_ws(trace, 4, ws_scheduler_by_name("drep"), seed=3)
    streamed = simulate_ws_stream(
        stream_trace(trace), 4, ws_scheduler_by_name("drep"), seed=3
    )
    sm = streamed.metrics
    assert sm.count == dense.n_jobs
    assert sm.mean_flow == pytest.approx(dense.mean_flow, rel=1e-12)
    assert sm.max_flow == float(dense.flow_times.max())
    assert streamed.extra["streaming"] is True


def test_streaming_requires_metrics_sink():
    trace = _dag_trace(n=10, seed=71)
    with pytest.raises(ValueError, match="simulate_ws_stream"):
        WsRuntime(stream_trace(trace), 4, ws_scheduler_by_name("drep"), seed=0)


def test_stream_without_dags_rejected():
    jobs = stream_trace(generate_trace(5, "finance", 0.5, 2, seed=1))
    with pytest.raises(ValueError, match="attach_dags_stream"):
        simulate_ws_stream(jobs, 2, ws_scheduler_by_name("drep"), seed=0)


def test_perf_counters_capture_memory():
    trace = _dag_trace(n=20, seed=81)
    streamed = simulate_ws_stream(
        stream_trace(trace), 4, ws_scheduler_by_name("drep"), seed=1
    )
    assert streamed.extra["perf"].get("peak_rss_mb", 0) > 0
