"""Tests for repro.wsim.structures — deques, job runs, workers."""

from __future__ import annotations

import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, spawn_tree
from repro.wsim.structures import JobRun, Worker, WsDeque


def make_job(dag, job_id=0, release_step=0):
    spec = JobSpec(
        job_id=job_id,
        release=float(release_step),
        work=float(dag.work),
        span=float(dag.span),
        mode=ParallelismMode.DAG,
        dag=dag,
    )
    return JobRun(spec, release_step)


class TestWsDeque:
    def test_lifo_for_owner(self):
        job = make_job(chain(3, 1))
        dq = WsDeque(job=job, owner=0)
        dq.push_bottom((job, 0))
        dq.push_bottom((job, 1))
        assert dq.pop_bottom() == (job, 1)
        assert dq.pop_bottom() == (job, 0)

    def test_steal_takes_top(self):
        job = make_job(chain(3, 1))
        dq = WsDeque(job=job, owner=0)
        dq.push_bottom((job, 0))
        dq.push_bottom((job, 1))
        assert dq.steal_top() == (job, 0)

    def test_muggable_flag(self):
        dq = WsDeque(job=None, owner=None)
        assert dq.muggable
        dq.owner = 3
        assert not dq.muggable

    def test_len(self):
        job = make_job(chain(2, 1))
        dq = WsDeque(job=job, owner=0)
        assert len(dq) == 0
        dq.push_bottom((job, 0))
        assert len(dq) == 1


class TestJobRun:
    def test_requires_dag(self):
        spec = JobSpec(job_id=0, release=0.0, work=1.0, span=1.0)
        with pytest.raises(ValueError, match="no DAG"):
            JobRun(spec, 0)

    def test_initial_state(self):
        dag = spawn_tree(2, 5)
        job = make_job(dag)
        assert job.remaining_nodes == dag.n_nodes
        assert not job.done
        assert (job.node_remaining == dag.weights).all()

    def test_ready_children_fires_once_per_parent(self):
        # diamond: node 3 becomes ready only after both 1 and 2 complete
        import numpy as np

        from repro.dag.graph import NO_CHILD, DagJob

        dag = DagJob(
            weights=np.array([1, 1, 1, 1]),
            child1=np.array([1, 3, 3, NO_CHILD]),
            child2=np.array([2, NO_CHILD, NO_CHILD, NO_CHILD]),
        )
        job = make_job(dag)
        assert job.ready_children(0) == [1, 2]
        assert job.ready_children(1) == []
        assert job.ready_children(2) == [3]

    def test_drop_deque_rejects_nonempty(self):
        job = make_job(chain(2, 1))
        dq = WsDeque(job=job, owner=0)
        job.deques.append(dq)
        dq.push_bottom((job, 0))
        with pytest.raises(ValueError):
            job.drop_deque(dq)

    def test_drop_deque_idempotent(self):
        job = make_job(chain(2, 1))
        dq = WsDeque(job=job, owner=0)
        job.deques.append(dq)
        job.drop_deque(dq)
        job.drop_deque(dq)  # no error
        assert job.deques == []

    def test_muggable_count(self):
        job = make_job(chain(2, 1))
        a = WsDeque(job=job, owner=None)
        b = WsDeque(job=job, owner=1)
        job.deques += [a, b]
        assert job.muggable_count() == 1


class TestWorker:
    def test_out_of_work(self):
        w = Worker(wid=0)
        assert w.out_of_work
        job = make_job(chain(2, 1))
        w.dq = WsDeque(job=job, owner=0)
        assert w.out_of_work
        w.dq.push_bottom((job, 0))
        assert not w.out_of_work

    def test_current_blocks_out_of_work(self):
        w = Worker(wid=0)
        job = make_job(chain(2, 1))
        w.current = (job, 0)
        assert not w.out_of_work
