"""Unit-level tests of switch_worker / flag semantics (paper Sec. IV-A).

These pin the exact deque lifecycle the analysis depends on: partially
executed nodes return to the deque, non-empty deques become muggable,
empty deques are deallocated, and stale flags are ignored.
"""

from __future__ import annotations

import pytest

from repro.core.job import JobSpec, ParallelismMode
from repro.dag.generators import chain, wide
from repro.workloads.traces import Trace
from repro.wsim.runtime import WsConfig, WsRuntime
from repro.wsim.schedulers import DrepWS
from repro.wsim.structures import JobRun


def dag_trace(dags, releases=None, m=2):
    releases = releases or [0.0] * len(dags)
    jobs = [
        JobSpec(
            job_id=i,
            release=float(r),
            work=float(d.work),
            span=float(d.span),
            mode=ParallelismMode.DAG,
            dag=d,
        )
        for i, (d, r) in enumerate(zip(dags, releases))
    ]
    return Trace(jobs=jobs, m=m, load=0.0, distribution="manual")


def runtime_with_running_job(m=2, width=6, strand=20):
    trace = dag_trace([wide(width, strand)], m=m)
    rt = WsRuntime(trace, m, DrepWS(), seed=1)
    rt.scheduler.reset(rt)
    rt._admit_arrivals()
    # let it run a few steps so workers hold nodes and deques
    for _ in range(10):
        for w in rt.workers:
            rt._act(w)
        rt.step += 1
    return rt


class TestSwitchWorker:
    def test_partial_node_returns_to_deque(self):
        rt = runtime_with_running_job()
        worker = next(w for w in rt.workers if w.current is not None)
        job, node = worker.current
        remaining_before = int(job.node_remaining[node])
        assert remaining_before > 0
        rt.switch_worker(worker, None, preempt=True)
        assert worker.current is None
        # the node sits on some deque of the job with its progress intact
        all_nodes = [ref for dq in job.deques for ref in dq.nodes]
        assert (job, node) in all_nodes
        assert int(job.node_remaining[node]) == remaining_before

    def test_nonempty_deque_becomes_muggable(self):
        rt = runtime_with_running_job()
        worker = next(
            w for w in rt.workers if w.dq is not None and (w.dq.nodes or w.current)
        )
        job = worker.job
        rt.switch_worker(worker, None, preempt=True)
        assert any(dq.muggable for dq in job.deques)
        # the muggable-never-empty invariant
        for dq in job.deques:
            if dq.muggable:
                assert dq.nodes

    def test_empty_deque_deallocated(self):
        trace = dag_trace([chain(30, 1)], m=2)
        rt = WsRuntime(trace, 2, DrepWS(), seed=1)
        rt.scheduler.reset(rt)
        rt._admit_arrivals()
        for _ in range(3):
            for w in rt.workers:
                rt._act(w)
            rt.step += 1
        worker = next(w for w in rt.workers if w.job is not None)
        job = worker.job
        # force the worker's deque empty (chain spawns no siblings), then
        # push the current node back and verify no empty muggable remains
        rt.switch_worker(worker, None, preempt=True)
        for dq in job.deques:
            assert not (dq.muggable and not dq.nodes)

    def test_switch_to_same_job_is_noop(self):
        rt = runtime_with_running_job()
        worker = next(w for w in rt.workers if w.job is not None)
        job = worker.job
        before = (rt.counters.switches, rt.counters.preemptions, worker.current)
        rt.switch_worker(worker, job, preempt=True)
        assert (rt.counters.switches, rt.counters.preemptions, worker.current) == before

    def test_preempt_flag_counts_budget(self):
        rt = runtime_with_running_job()
        worker = next(w for w in rt.workers if w.job is not None)
        pre = rt.counters.preemptions
        rt.switch_worker(worker, None, preempt=True)
        assert rt.counters.preemptions == pre + 1

    def test_completion_switch_not_a_preemption(self):
        rt = runtime_with_running_job()
        worker = next(w for w in rt.workers if w.job is not None)
        pre = rt.counters.preemptions
        rt.switch_worker(worker, None, preempt=False)
        assert rt.counters.preemptions == pre


class TestFlagStaleness:
    def test_flag_for_finished_job_dropped(self):
        trace = dag_trace([chain(10, 1), chain(10, 1)], releases=[0.0, 0.0], m=1)
        rt = WsRuntime(trace, 1, DrepWS(), seed=1)
        rt.scheduler.reset(rt)
        rt._admit_arrivals()
        worker = rt.workers[0]
        # fabricate a finished target
        ghost = JobRun(trace.jobs[1], 0)
        ghost.remaining_nodes = 0
        worker.flag_target = ghost
        assert not rt._flag_fires(worker)
        assert worker.flag_target is None  # cleared as stale

    @pytest.mark.parametrize(
        "mode,needs_idle",
        [("step", False), ("node", True), ("steal", True)],
    )
    def test_flag_granularity(self, mode, needs_idle):
        trace = dag_trace([chain(50, 50), chain(10, 1)], releases=[0.0, 0.0], m=1)
        rt = WsRuntime(trace, 1, DrepWS(), seed=1, config=WsConfig(preempt_check=mode))
        rt.scheduler.reset(rt)
        rt._admit_arrivals()
        worker = rt.workers[0]
        # get the worker mid-node
        for _ in range(3):
            rt._act(worker)
            rt.step += 1
        if worker.current is None:
            pytest.skip("worker not mid-node under this seed")
        target = rt.active[-1]
        worker.flag_target = target
        fired = rt._flag_fires(worker)
        if needs_idle:
            assert not fired  # mid-node: only 'step' fires immediately
        else:
            assert fired
